#include "src/runtime/online_server.h"

#include <algorithm>
#include <stdexcept>

#include "src/common/parallel_for.h"

namespace flashps::runtime {

OnlineServer::OnlineServer(Options options)
    : options_(std::move(options)), model_(options_.numerics) {
  // One model per extra resolution; skipping the native grid (and
  // duplicates) keeps the resolution index stable for cache-id salting.
  for (const auto& [grid_h, grid_w] : options_.extra_resolutions) {
    if (grid_h <= 0 || grid_w <= 0) {
      throw std::runtime_error("OnlineServer: non-positive resolution");
    }
    if (ModelForGrid(grid_h, grid_w) != nullptr) {
      continue;
    }
    model::NumericsConfig numerics = options_.numerics;
    numerics.grid_h = grid_h;
    numerics.grid_w = grid_w;
    extra_models_.push_back(std::make_unique<model::DiffusionModel>(numerics));
  }
  source_ = options_.activation_source != nullptr
                ? options_.activation_source
                : std::make_shared<cache::ActivationStore>();
  if (options_.disaggregate) {
    cpu_pool_ = std::make_unique<ThreadPool>(options_.cpu_lanes);
  }
  denoise_thread_ = std::thread([this] { DenoiseLoop(); });
}

OnlineServer::~OnlineServer() { Stop(); }

OnlineServer::ResolutionRoute OnlineServer::RouteForGrid(int grid_h,
                                                         int grid_w) const {
  if (grid_h == options_.numerics.grid_h && grid_w == options_.numerics.grid_w) {
    return {&model_, 0};
  }
  for (size_t i = 0; i < extra_models_.size(); ++i) {
    const model::NumericsConfig& numerics = extra_models_[i]->config();
    if (grid_h == numerics.grid_h && grid_w == numerics.grid_w) {
      return {extra_models_[i].get(), static_cast<int>(i) + 1};
    }
  }
  return {nullptr, 0};
}

const model::DiffusionModel* OnlineServer::ModelForGrid(int grid_h,
                                                        int grid_w) const {
  return RouteForGrid(grid_h, grid_w).model;
}

int OnlineServer::EffectiveTemplateId(int template_id, int grid_h,
                                      int grid_w) const {
  const ResolutionRoute route = RouteForGrid(grid_h, grid_w);
  if (route.model == nullptr) {
    return -1;
  }
  return template_id + kResolutionCacheStride * route.res_index;
}

void OnlineServer::Preprocess(InFlight& item) const {
  // The CPU-bound "pre-processing": decode the user's inputs into a latent.
  // Both the template encode and the activation record (Acquire in the
  // denoise loop) use the salted effective id, so they stay consistent
  // per resolution.
  const Matrix tmpl = item.model->EncodeTemplate(item.effective_template_id);
  item.latent = item.model->InitEditLatent(tmpl, item.request.mask,
                                           item.request.prompt_seed);
}

void OnlineServer::Postprocess(InFlightPtr item) {
  // The CPU-bound "post-processing": decode the latent to an image and
  // fulfil the caller's future.
  OnlineResponse response;
  response.id = item->id;
  response.image = item->model->DecodeLatent(item->latent);
  response.submitted = item->submitted;
  response.admitted = item->admitted;
  response.denoise_done = item->denoise_done;
  response.completed = std::chrono::steady_clock::now();
  response.deadline = item->request.deadline;
  completed_.fetch_add(1);
  item->promise.set_value(std::move(response));
}

void OnlineServer::Reject(InFlightPtr item) {
  // A request that lost the race with Stop(): keep the accepted/completed
  // accounting balanced so Stop() never waits on work that will not run,
  // and fail the caller's future explicitly.
  StatusRetire(item->id);
  completed_.fetch_add(1);
  item->promise.set_exception(std::make_exception_ptr(
      std::runtime_error("OnlineServer: shutting down")));
}

void OnlineServer::StatusMarkWaiting(uint64_t id, double ratio) {
  std::lock_guard<std::mutex> lock(status_mu_);
  waiting_status_[id] = ratio;
}

void OnlineServer::StatusMarkRunning(uint64_t id) {
  std::lock_guard<std::mutex> lock(status_mu_);
  auto it = waiting_status_.find(id);
  RunningState state;
  if (it != waiting_status_.end()) {
    state.ratio = it->second;
    waiting_status_.erase(it);
  }
  running_status_[id] = state;
}

void OnlineServer::StatusUpdateSteps(uint64_t id, int steps_done) {
  std::lock_guard<std::mutex> lock(status_mu_);
  auto it = running_status_.find(id);
  if (it != running_status_.end()) {
    it->second.steps_done = steps_done;
  }
}

void OnlineServer::StatusRetire(uint64_t id) {
  std::lock_guard<std::mutex> lock(status_mu_);
  waiting_status_.erase(id);
  running_status_.erase(id);
}

BatchSnapshot OnlineServer::Snapshot() const {
  const int total_steps = options_.numerics.num_steps;
  BatchSnapshot snap;
  snap.max_batch = options_.max_batch;
  std::lock_guard<std::mutex> lock(status_mu_);
  snap.running_ratios.reserve(running_status_.size());
  snap.running_remaining.reserve(running_status_.size());
  for (const auto& [id, state] : running_status_) {
    const int remaining = std::max(0, total_steps - state.steps_done);
    snap.running_ratios.push_back(state.ratio);
    snap.running_remaining.push_back(remaining);
    snap.remaining_steps += remaining;
  }
  snap.waiting_ratios.reserve(waiting_status_.size());
  for (const auto& [id, ratio] : waiting_status_) {
    snap.waiting_ratios.push_back(ratio);
    snap.remaining_steps += total_steps;
  }
  return snap;
}

std::future<OnlineResponse> OnlineServer::Submit(OnlineRequest request) {
  if (stopping_.load()) {
    throw std::runtime_error("OnlineServer: submit after Stop()");
  }
  const ResolutionRoute route =
      RouteForGrid(request.mask.grid_h, request.mask.grid_w);
  if (route.model == nullptr) {
    // Unsupported resolution: fail the future without touching the
    // accepted/completed accounting (neither is incremented, so Stop()
    // stays balanced).
    std::promise<OnlineResponse> failed;
    failed.set_exception(std::make_exception_ptr(std::runtime_error(
        "OnlineServer: unsupported resolution " +
        std::to_string(request.mask.grid_h) + "x" +
        std::to_string(request.mask.grid_w))));
    return failed.get_future();
  }
  auto item = std::make_unique<InFlight>();
  item->id = next_id_.fetch_add(1);
  item->request = std::move(request);
  item->model = route.model;
  item->effective_template_id =
      item->request.template_id + kResolutionCacheStride * route.res_index;
  item->submitted = std::chrono::steady_clock::now();
  std::future<OnlineResponse> future = item->promise.get_future();
  // The status tables publish the EFFECTIVE ratio — masked tokens over the
  // native grid's token count — so routers comparing load across a
  // hybrid-resolution fleet see cost-comparable numbers. For native-grid
  // requests this is exactly mask.ratio().
  StatusMarkWaiting(item->id,
                    static_cast<double>(item->request.mask.masked_tokens.size()) /
                        static_cast<double>(options_.numerics.tokens()));
  accepted_.fetch_add(1);
  if (options_.mask_aware) {
    // Queue-ahead: this request waits behind pre-processing and the
    // running batch before admission Acquire()s its template, so start a
    // slow (remote) acquisition now — the wire fetch overlaps the
    // predecessors' denoise exactly like Algorithm 1 overlaps the next
    // step's cache load with the current step's compute.
    source_->Prefetch(*item->model, item->effective_template_id,
                      /*record_kv=*/options_.sparse_compute);
  }

  if (options_.disaggregate) {
    // Pre-processing runs on a CPU lane; the request becomes admissible
    // once its latent is ready.
    InFlight* raw = item.release();
    const bool ok = cpu_pool_->Submit([this, raw] {
      InFlightPtr owned(raw);
      Preprocess(*owned);
      if (auto rejected = ready_.PushOrReturn(std::move(owned))) {
        Reject(std::move(*rejected));
      }
    });
    if (!ok) {
      Reject(InFlightPtr(raw));
    }
  } else {
    // Strawman: raw request goes straight to the denoise thread, which will
    // pay the pre-processing inline (interrupting the running batch).
    if (auto rejected = ready_.PushOrReturn(std::move(item))) {
      // Lost the race with Stop(): the queue closed between the stopping_
      // check and the push. Surface the rejection through the future —
      // never a silent broken promise.
      Reject(std::move(*rejected));
    }
  }
  return future;
}

void OnlineServer::DenoiseLoop() {
  // Kernel-level parallelism for everything this thread computes (denoise
  // steps, cache registration, and — in the strawman — inline pre/post).
  ComputeThreadsScope compute_scope(options_.compute_threads);
  std::vector<InFlightPtr> batch;
  const int total_steps = options_.numerics.num_steps;

  model::DiffusionModel::RunOptions run_options;
  run_options.mode = options_.mask_aware ? model::ComputeMode::kMaskAwareY
                                         : model::ComputeMode::kFull;
  run_options.sparse_compute = options_.mask_aware && options_.sparse_compute;
  const bool patch_batching = options_.mask_aware && options_.sparse_compute &&
                              options_.patch_batching;

  for (;;) {
    // Admit up to capacity. Block only when the batch is idle.
    while (static_cast<int>(batch.size()) < options_.max_batch) {
      std::optional<InFlightPtr> item =
          batch.empty() ? ready_.Pop() : ready_.TryPop();
      if (!item.has_value()) {
        break;
      }
      InFlightPtr inflight = std::move(*item);
      if (!options_.disaggregate) {
        Preprocess(*inflight);  // Interrupts the running batch.
      }
      if (options_.mask_aware) {
        // Acquire once per request and pin for its lifetime: a local
        // source registers on first use; a remote source fetches from the
        // cache node (or falls back to local registration — admission
        // never fails because the cache tier is down).
        // sparse_compute needs K/V in the record; the step loop degrades
        // to the dense path if a (remote) source hands back a Y-only one.
        inflight->cache =
            source_->Acquire(*inflight->model,
                             inflight->effective_template_id,
                             /*record_kv=*/options_.sparse_compute);
      }
      inflight->admitted = std::chrono::steady_clock::now();
      StatusMarkRunning(inflight->id);
      batch.push_back(std::move(inflight));
    }
    if (batch.empty()) {
      if (ready_.closed()) {
        return;  // Drained and shut down.
      }
      continue;
    }

    // One denoising step for every batch member (step-level interleaving).
    // Patch-granular path: members whose pinned record carries K/V advance
    // through ONE cross-request gathered panel per block — the token-wise
    // GEMMs of the whole (possibly mixed-resolution) batch run as single
    // kernels over everyone's masked tokens. The rest (full-compute mode,
    // Y-only records from a degraded remote fetch, patch batching off)
    // step solo; both paths produce bitwise-identical latents (see
    // DiffusionModel::RunStepBatchGathered).
    std::vector<model::DiffusionModel::StepBatchMember> panel;
    std::vector<InFlight*> solo;
    for (auto& member : batch) {
      if (patch_batching && member->cache != nullptr &&
          member->cache->has_kv()) {
        panel.push_back({member->model, &member->latent,
                         &member->request.mask, member->cache.get(),
                         member->steps_done});
      } else {
        solo.push_back(member.get());
      }
    }
    if (!panel.empty()) {
      model::DiffusionModel::RunStepBatchGathered(panel);
    }
    for (InFlight* member : solo) {
      model::DiffusionModel::RunOptions opts = run_options;
      if (options_.mask_aware) {
        opts.cache = member->cache.get();
        opts.mask = &member->request.mask;
      }
      member->latent = member->model->RunStepRange(std::move(member->latent),
                                                   opts, member->steps_done,
                                                   member->steps_done + 1);
    }
    for (auto& member : batch) {
      ++member->steps_done;
      StatusUpdateSteps(member->id, member->steps_done);
    }

    // Retire finished members.
    for (auto it = batch.begin(); it != batch.end();) {
      if ((*it)->steps_done < total_steps) {
        ++it;
        continue;
      }
      InFlightPtr done = std::move(*it);
      it = batch.erase(it);
      done->denoise_done = std::chrono::steady_clock::now();
      StatusRetire(done->id);
      if (options_.disaggregate) {
        InFlight* raw = done.release();
        cpu_pool_->Submit([this, raw] { Postprocess(InFlightPtr(raw)); });
      } else {
        Postprocess(std::move(done));
      }
    }
  }
}

void OnlineServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Another caller is (or was) stopping; nothing to do — the first caller
    // joins the threads.
    return;
  }
  // No new submissions are accepted now. The denoise loop keeps running, so
  // wait for every accepted request to fully complete before tearing down.
  while (completed_.load() < accepted_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ready_.Close();
  if (denoise_thread_.joinable()) {
    denoise_thread_.join();
  }
  if (cpu_pool_ != nullptr) {
    cpu_pool_->Shutdown();
  }
}

}  // namespace flashps::runtime
