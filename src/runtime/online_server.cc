#include "src/runtime/online_server.h"

#include <algorithm>
#include <stdexcept>

#include "src/common/parallel_for.h"

namespace flashps::runtime {

OnlineServer::OnlineServer(Options options)
    : options_(std::move(options)), model_(options_.numerics) {
  source_ = options_.activation_source != nullptr
                ? options_.activation_source
                : std::make_shared<cache::ActivationStore>();
  if (options_.disaggregate) {
    cpu_pool_ = std::make_unique<ThreadPool>(options_.cpu_lanes);
  }
  denoise_thread_ = std::thread([this] { DenoiseLoop(); });
}

OnlineServer::~OnlineServer() { Stop(); }

void OnlineServer::Preprocess(InFlight& item) const {
  // The CPU-bound "pre-processing": decode the user's inputs into a latent.
  const Matrix tmpl = model_.EncodeTemplate(item.request.template_id);
  item.latent =
      model_.InitEditLatent(tmpl, item.request.mask, item.request.prompt_seed);
}

void OnlineServer::Postprocess(InFlightPtr item) {
  // The CPU-bound "post-processing": decode the latent to an image and
  // fulfil the caller's future.
  OnlineResponse response;
  response.id = item->id;
  response.image = model_.DecodeLatent(item->latent);
  response.submitted = item->submitted;
  response.admitted = item->admitted;
  response.denoise_done = item->denoise_done;
  response.completed = std::chrono::steady_clock::now();
  response.deadline = item->request.deadline;
  completed_.fetch_add(1);
  item->promise.set_value(std::move(response));
}

void OnlineServer::Reject(InFlightPtr item) {
  // A request that lost the race with Stop(): keep the accepted/completed
  // accounting balanced so Stop() never waits on work that will not run,
  // and fail the caller's future explicitly.
  StatusRetire(item->id);
  completed_.fetch_add(1);
  item->promise.set_exception(std::make_exception_ptr(
      std::runtime_error("OnlineServer: shutting down")));
}

void OnlineServer::StatusMarkWaiting(uint64_t id, double ratio) {
  std::lock_guard<std::mutex> lock(status_mu_);
  waiting_status_[id] = ratio;
}

void OnlineServer::StatusMarkRunning(uint64_t id) {
  std::lock_guard<std::mutex> lock(status_mu_);
  auto it = waiting_status_.find(id);
  RunningState state;
  if (it != waiting_status_.end()) {
    state.ratio = it->second;
    waiting_status_.erase(it);
  }
  running_status_[id] = state;
}

void OnlineServer::StatusUpdateSteps(uint64_t id, int steps_done) {
  std::lock_guard<std::mutex> lock(status_mu_);
  auto it = running_status_.find(id);
  if (it != running_status_.end()) {
    it->second.steps_done = steps_done;
  }
}

void OnlineServer::StatusRetire(uint64_t id) {
  std::lock_guard<std::mutex> lock(status_mu_);
  waiting_status_.erase(id);
  running_status_.erase(id);
}

BatchSnapshot OnlineServer::Snapshot() const {
  const int total_steps = options_.numerics.num_steps;
  BatchSnapshot snap;
  snap.max_batch = options_.max_batch;
  std::lock_guard<std::mutex> lock(status_mu_);
  snap.running_ratios.reserve(running_status_.size());
  snap.running_remaining.reserve(running_status_.size());
  for (const auto& [id, state] : running_status_) {
    const int remaining = std::max(0, total_steps - state.steps_done);
    snap.running_ratios.push_back(state.ratio);
    snap.running_remaining.push_back(remaining);
    snap.remaining_steps += remaining;
  }
  snap.waiting_ratios.reserve(waiting_status_.size());
  for (const auto& [id, ratio] : waiting_status_) {
    snap.waiting_ratios.push_back(ratio);
    snap.remaining_steps += total_steps;
  }
  return snap;
}

std::future<OnlineResponse> OnlineServer::Submit(OnlineRequest request) {
  if (stopping_.load()) {
    throw std::runtime_error("OnlineServer: submit after Stop()");
  }
  auto item = std::make_unique<InFlight>();
  item->id = next_id_.fetch_add(1);
  item->request = std::move(request);
  item->submitted = std::chrono::steady_clock::now();
  std::future<OnlineResponse> future = item->promise.get_future();
  StatusMarkWaiting(item->id, item->request.mask.ratio());
  accepted_.fetch_add(1);
  if (options_.mask_aware) {
    // Queue-ahead: this request waits behind pre-processing and the
    // running batch before admission Acquire()s its template, so start a
    // slow (remote) acquisition now — the wire fetch overlaps the
    // predecessors' denoise exactly like Algorithm 1 overlaps the next
    // step's cache load with the current step's compute.
    source_->Prefetch(model_, item->request.template_id,
                      /*record_kv=*/options_.sparse_compute);
  }

  if (options_.disaggregate) {
    // Pre-processing runs on a CPU lane; the request becomes admissible
    // once its latent is ready.
    InFlight* raw = item.release();
    const bool ok = cpu_pool_->Submit([this, raw] {
      InFlightPtr owned(raw);
      Preprocess(*owned);
      if (auto rejected = ready_.PushOrReturn(std::move(owned))) {
        Reject(std::move(*rejected));
      }
    });
    if (!ok) {
      Reject(InFlightPtr(raw));
    }
  } else {
    // Strawman: raw request goes straight to the denoise thread, which will
    // pay the pre-processing inline (interrupting the running batch).
    if (auto rejected = ready_.PushOrReturn(std::move(item))) {
      // Lost the race with Stop(): the queue closed between the stopping_
      // check and the push. Surface the rejection through the future —
      // never a silent broken promise.
      Reject(std::move(*rejected));
    }
  }
  return future;
}

void OnlineServer::DenoiseLoop() {
  // Kernel-level parallelism for everything this thread computes (denoise
  // steps, cache registration, and — in the strawman — inline pre/post).
  ComputeThreadsScope compute_scope(options_.compute_threads);
  std::vector<InFlightPtr> batch;
  const int total_steps = options_.numerics.num_steps;

  model::DiffusionModel::RunOptions run_options;
  run_options.mode = options_.mask_aware ? model::ComputeMode::kMaskAwareY
                                         : model::ComputeMode::kFull;
  run_options.sparse_compute = options_.mask_aware && options_.sparse_compute;

  for (;;) {
    // Admit up to capacity. Block only when the batch is idle.
    while (static_cast<int>(batch.size()) < options_.max_batch) {
      std::optional<InFlightPtr> item =
          batch.empty() ? ready_.Pop() : ready_.TryPop();
      if (!item.has_value()) {
        break;
      }
      InFlightPtr inflight = std::move(*item);
      if (!options_.disaggregate) {
        Preprocess(*inflight);  // Interrupts the running batch.
      }
      if (options_.mask_aware) {
        // Acquire once per request and pin for its lifetime: a local
        // source registers on first use; a remote source fetches from the
        // cache node (or falls back to local registration — admission
        // never fails because the cache tier is down).
        // sparse_compute needs K/V in the record; the step loop degrades
        // to the dense path if a (remote) source hands back a Y-only one.
        inflight->cache =
            source_->Acquire(model_, inflight->request.template_id,
                             /*record_kv=*/options_.sparse_compute);
      }
      inflight->admitted = std::chrono::steady_clock::now();
      StatusMarkRunning(inflight->id);
      batch.push_back(std::move(inflight));
    }
    if (batch.empty()) {
      if (ready_.closed()) {
        return;  // Drained and shut down.
      }
      continue;
    }

    // One denoising step for every batch member (step-level interleaving).
    for (auto& member : batch) {
      model::DiffusionModel::RunOptions opts = run_options;
      if (options_.mask_aware) {
        opts.cache = member->cache.get();
        opts.mask = &member->request.mask;
      }
      member->latent = model_.RunStepRange(std::move(member->latent), opts,
                                           member->steps_done,
                                           member->steps_done + 1);
      ++member->steps_done;
      StatusUpdateSteps(member->id, member->steps_done);
    }

    // Retire finished members.
    for (auto it = batch.begin(); it != batch.end();) {
      if ((*it)->steps_done < total_steps) {
        ++it;
        continue;
      }
      InFlightPtr done = std::move(*it);
      it = batch.erase(it);
      done->denoise_done = std::chrono::steady_clock::now();
      StatusRetire(done->id);
      if (options_.disaggregate) {
        InFlight* raw = done.release();
        cpu_pool_->Submit([this, raw] { Postprocess(InFlightPtr(raw)); });
      } else {
        Postprocess(std::move(done));
      }
    }
  }
}

void OnlineServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Another caller is (or was) stopping; nothing to do — the first caller
    // joins the threads.
    return;
  }
  // No new submissions are accepted now. The denoise loop keeps running, so
  // wait for every accepted request to fully complete before tearing down.
  while (completed_.load() < accepted_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ready_.Close();
  if (denoise_thread_.joinable()) {
    denoise_thread_.join();
  }
  if (cpu_pool_ != nullptr) {
    cpu_pool_->Shutdown();
  }
}

}  // namespace flashps::runtime
