// Compatibility shim: ThreadPool moved to src/common so the kernel layer's
// ParallelFor fan-out can reuse it. The runtime-qualified name stays valid
// for existing callers.
#ifndef FLASHPS_SRC_RUNTIME_THREAD_POOL_H_
#define FLASHPS_SRC_RUNTIME_THREAD_POOL_H_

#include "src/common/thread_pool.h"

namespace flashps::runtime {

using ::flashps::ThreadPool;

}  // namespace flashps::runtime

#endif  // FLASHPS_SRC_RUNTIME_THREAD_POOL_H_
