#include "src/runtime/serde.h"

namespace flashps::runtime {

namespace {

bool FailWith(ByteReader& reader, std::string* error, const char* reason) {
  reader.Fail();
  if (error != nullptr) {
    *error = reason;
  }
  return false;
}

}  // namespace

void AppendOnlineRequest(const OnlineRequest& request,
                         std::vector<uint8_t>& out) {
  ByteWriter w(out);
  w.I32(request.template_id);
  w.U64(request.prompt_seed);
  w.I64(request.slo.micros());
  w.I32(request.mask.grid_h);
  w.I32(request.mask.grid_w);
  w.U32(static_cast<uint32_t>(request.mask.masked_tokens.size()));
  for (const int token : request.mask.masked_tokens) {
    w.U32(static_cast<uint32_t>(token));
  }
  // v3 resolution fields. The request's resolution IS its mask grid, but
  // the pair still travels explicitly so the decoder can reject a frame
  // whose two notions of shape disagree.
  w.I32(request.mask.grid_h);
  w.I32(request.mask.grid_w);
}

bool ReadOnlineRequest(ByteReader& reader, OnlineRequest* out,
                       std::string* error, bool with_resolution) {
  OnlineRequest request;
  request.template_id = reader.I32();
  request.prompt_seed = reader.U64();
  const int64_t slo_us = reader.I64();
  request.mask.grid_h = reader.I32();
  request.mask.grid_w = reader.I32();
  const uint32_t n_masked = reader.U32();
  if (!reader.ok()) {
    return FailWith(reader, error, "request payload shorter than its header");
  }
  if (request.template_id < 0) {
    return FailWith(reader, error, "negative template id");
  }
  if (slo_us < 0) {
    return FailWith(reader, error, "negative relative SLO");
  }
  request.slo = Duration::Micros(slo_us);
  if (request.mask.grid_h <= 0 || request.mask.grid_h > kMaxGridSide ||
      request.mask.grid_w <= 0 || request.mask.grid_w > kMaxGridSide) {
    return FailWith(reader, error, "mask grid out of range");
  }
  const uint32_t tokens =
      static_cast<uint32_t>(request.mask.grid_h) *
      static_cast<uint32_t>(request.mask.grid_w);
  if (n_masked > tokens) {
    return FailWith(reader, error, "more masked tokens than grid cells");
  }
  request.mask.masked_tokens.reserve(n_masked);
  int64_t prev = -1;
  for (uint32_t i = 0; i < n_masked; ++i) {
    const uint32_t token = reader.U32();
    if (!reader.ok()) {
      return FailWith(reader, error, "masked token list truncated");
    }
    if (token >= tokens || static_cast<int64_t>(token) <= prev) {
      return FailWith(reader, error,
                      "masked token ids not strictly increasing in range");
    }
    prev = token;
    request.mask.masked_tokens.push_back(static_cast<int>(token));
  }
  if (with_resolution) {
    const int32_t res_h = reader.I32();
    const int32_t res_w = reader.I32();
    if (!reader.ok()) {
      return FailWith(reader, error, "resolution fields truncated");
    }
    if (res_h != request.mask.grid_h || res_w != request.mask.grid_w) {
      return FailWith(reader, error,
                      "resolution fields disagree with mask grid");
    }
  }
  // Rebuild the unmasked complement so the mask is consistent by
  // construction.
  request.mask.unmasked_tokens.reserve(tokens - n_masked);
  size_t next_masked = 0;
  for (uint32_t token = 0; token < tokens; ++token) {
    if (next_masked < request.mask.masked_tokens.size() &&
        request.mask.masked_tokens[next_masked] == static_cast<int>(token)) {
      ++next_masked;
    } else {
      request.mask.unmasked_tokens.push_back(static_cast<int>(token));
    }
  }
  *out = std::move(request);
  return true;
}

}  // namespace flashps::runtime
