// Real-time online serving runtime (the paper's §5 implementation layer).
//
// A dedicated denoise thread owns the running batch and advances every
// member by one denoising step per iteration — requests join and leave at
// step boundaries (continuous batching). CPU-bound pre-processing (latent
// preparation) and post-processing (decoding) either run disaggregated on a
// thread pool (FlashPS's design: the denoise thread is never interrupted)
// or inline on the denoise thread (the strawman), selectable per server.
//
// This is the actual-concurrency counterpart of serving::Worker (which
// models the same policies in virtual time): real threads, real queues,
// real math, wall-clock timestamps.
#ifndef FLASHPS_SRC_RUNTIME_ONLINE_SERVER_H_
#define FLASHPS_SRC_RUNTIME_ONLINE_SERVER_H_

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>

#include "src/cache/activation_store.h"
#include "src/model/diffusion_model.h"
#include "src/runtime/concurrent_queue.h"
#include "src/runtime/thread_pool.h"

namespace flashps::runtime {

struct OnlineRequest {
  int template_id = 0;
  trace::Mask mask;
  uint64_t prompt_seed = 0;
};

struct OnlineResponse {
  uint64_t id = 0;
  Matrix image;
  std::chrono::steady_clock::time_point submitted;
  std::chrono::steady_clock::time_point admitted;      // Joined the batch.
  std::chrono::steady_clock::time_point denoise_done;  // Left the batch.
  std::chrono::steady_clock::time_point completed;     // Post done.

  double queueing_ms() const {
    return std::chrono::duration<double, std::milli>(admitted - submitted)
        .count();
  }
  double total_ms() const {
    return std::chrono::duration<double, std::milli>(completed - submitted)
        .count();
  }
};

class OnlineServer {
 public:
  struct Options {
    model::NumericsConfig numerics = model::NumericsConfig::ForTests();
    int max_batch = 4;
    bool mask_aware = true;
    // true: pre/post on the CPU lanes (FlashPS); false: inline on the
    // denoise thread (the Fig. 10-Top strawman).
    bool disaggregate = true;
    int cpu_lanes = 2;
  };

  explicit OnlineServer(Options options);
  ~OnlineServer();

  OnlineServer(const OnlineServer&) = delete;
  OnlineServer& operator=(const OnlineServer&) = delete;

  // Asynchronous submission; the future resolves when post-processing
  // finishes. Throws std::runtime_error after Stop().
  std::future<OnlineResponse> Submit(OnlineRequest request);

  // Completes all accepted requests, then joins every thread. Idempotent.
  void Stop();

  uint64_t completed_count() const { return completed_.load(); }
  const model::DiffusionModel& model() const { return model_; }

 private:
  struct InFlight {
    uint64_t id = 0;
    OnlineRequest request;
    Matrix latent;
    int steps_done = 0;
    std::promise<OnlineResponse> promise;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point admitted;
    std::chrono::steady_clock::time_point denoise_done;
  };
  using InFlightPtr = std::unique_ptr<InFlight>;

  void DenoiseLoop();
  // Prepares the initial latent (the CPU-bound "pre-processing").
  void Preprocess(InFlight& item) const;
  // Decodes and fulfills the promise (the CPU-bound "post-processing").
  void Postprocess(InFlightPtr item);

  Options options_;
  model::DiffusionModel model_;
  cache::ActivationStore store_;  // Touched only by the denoise thread.
  ConcurrentQueue<InFlightPtr> ready_;
  std::unique_ptr<ThreadPool> cpu_pool_;
  std::thread denoise_thread_;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace flashps::runtime

#endif  // FLASHPS_SRC_RUNTIME_ONLINE_SERVER_H_
