// Real-time online serving runtime (the paper's §5 implementation layer).
//
// A dedicated denoise thread owns the running batch and advances every
// member by one denoising step per iteration — requests join and leave at
// step boundaries (continuous batching). CPU-bound pre-processing (latent
// preparation) and post-processing (decoding) either run disaggregated on a
// thread pool (FlashPS's design: the denoise thread is never interrupted)
// or inline on the denoise thread (the strawman), selectable per server.
//
// This is the actual-concurrency counterpart of serving::Worker (which
// models the same policies in virtual time): real threads, real queues,
// real math, wall-clock timestamps.
#ifndef FLASHPS_SRC_RUNTIME_ONLINE_SERVER_H_
#define FLASHPS_SRC_RUNTIME_ONLINE_SERVER_H_

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/cache/activation_store.h"
#include "src/common/concurrent_queue.h"
#include "src/common/thread_pool.h"
#include "src/common/time.h"
#include "src/model/diffusion_model.h"

namespace flashps::runtime {

struct OnlineRequest {
  int template_id = 0;
  trace::Mask mask;
  uint64_t prompt_seed = 0;
  // Completion deadline (SLO) the caller wants; max() means "none". The
  // server itself never drops a late request — deadlines are carried through
  // so the gateway's admission control and metrics can act on them.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  // Relative SLO budget, stamped into `deadline` at dispatch time by the
  // gateway when no absolute deadline is set; Zero() means "none". Lets
  // open-loop drivers attach per-request (e.g. slowdown-normalized) SLOs
  // without knowing the dispatch wall-clock in advance.
  Duration slo = Duration::Zero();
};

struct OnlineResponse {
  uint64_t id = 0;
  Matrix image;
  std::chrono::steady_clock::time_point submitted;
  std::chrono::steady_clock::time_point admitted;      // Joined the batch.
  std::chrono::steady_clock::time_point denoise_done;  // Left the batch.
  std::chrono::steady_clock::time_point completed;     // Post done.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  double queueing_ms() const {
    return std::chrono::duration<double, std::milli>(admitted - submitted)
        .count();
  }
  double denoise_ms() const {
    return std::chrono::duration<double, std::milli>(denoise_done - admitted)
        .count();
  }
  double post_ms() const {
    return std::chrono::duration<double, std::milli>(completed - denoise_done)
        .count();
  }
  double total_ms() const {
    return std::chrono::duration<double, std::milli>(completed - submitted)
        .count();
  }
  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
  bool met_deadline() const { return completed <= deadline; }
};

// Point-in-time view of a server's load, shaped for the routers: mask ratios
// of the batch members currently denoising, mask ratios of accepted requests
// not yet admitted (in pre-processing or queued), and the total outstanding
// denoising steps. This is the live counterpart of the virtual-time
// sched::WorkerStatus the cluster simulation publishes.
struct BatchSnapshot {
  std::vector<double> running_ratios;
  // Remaining denoise steps per running member, parallel to running_ratios.
  std::vector<int> running_remaining;
  std::vector<double> waiting_ratios;
  int64_t remaining_steps = 0;
  int max_batch = 0;

  // Room in the running batch that queued work will not already consume:
  // waiting requests are admitted the moment a slot opens, so they count
  // against the slack a router can still use.
  bool has_slack() const {
    return static_cast<int>(running_ratios.size() + waiting_ratios.size()) <
           max_batch;
  }
};

class OnlineServer {
 public:
  struct Options {
    model::NumericsConfig numerics = model::NumericsConfig::ForTests();
    int max_batch = 4;
    bool mask_aware = true;
    // true: pre/post on the CPU lanes (FlashPS); false: inline on the
    // denoise thread (the Fig. 10-Top strawman).
    bool disaggregate = true;
    int cpu_lanes = 2;
    // Mask-aware only: run cached blocks through the gathered-panel sparse
    // compute path, making per-step compute proportional to the mask ratio
    // (see model::DiffusionModel::RunOptions::sparse_compute). Acquires
    // activation records with K/V (3x the Y-only record bytes) so the
    // gathered path can replenish projections from the cache. Output is
    // bitwise-identical to the dense path.
    bool sparse_compute = false;
    // Grids served in addition to the native `numerics` grid. Each extra
    // resolution gets its own model that shares the native model's weight
    // family (same numerics except the grid), so its block weights are
    // bitwise-identical and cross-resolution panels batch safely (see
    // model::DiffusionModel::StepBatchMember). Requests route by their
    // mask's grid; a grid matching no configured resolution fails the
    // submit future immediately. Empty keeps the seed's single-resolution
    // server, byte for byte. Non-native resolutions key the activation
    // source with a salted template id (template_id +
    // kResolutionCacheStride * resolution_index) so records of different
    // shapes never collide in a shared cache tier; template ids should
    // stay below the stride.
    std::vector<std::pair<int, int>> extra_resolutions;
    // Patch-granular step batching (the hybrid-resolution serving unit):
    // when mask-aware sparse compute is on, batch members whose pinned
    // records carry K/V advance through ONE cross-request gathered panel
    // per block (DiffusionModel::RunStepBatchGathered) instead of solo
    // steps — bitwise-identical latents, with the token-wise GEMM cost of
    // the whole batch proportional to its total masked tokens rather than
    // paid per member. false = the serialize-per-resolution baseline
    // (every member steps alone). Ignored unless mask_aware and
    // sparse_compute are both set.
    bool patch_batching = true;
    // Intra-op kernel parallelism for the denoise thread: GEMM row panels,
    // LayerNorm/softmax rows and GeLU are fanned out across this many
    // threads (shared ParallelFor pool; 1 = the seed's serial kernels).
    // Results are bitwise-independent of this setting.
    int compute_threads = 1;
    // Where template activations come from. Null (the default) keeps the
    // seed behavior: a private in-process ActivationStore. A
    // cache::RemoteActivationStore here puts the worker on the shared
    // cache tier; a shared_ptr to one local store puts a whole fleet on
    // one in-process store. Either way the denoise loop is identical —
    // records are acquired once per request and pinned until it retires.
    std::shared_ptr<cache::ActivationSource> activation_source;
  };

  explicit OnlineServer(Options options);
  ~OnlineServer();

  OnlineServer(const OnlineServer&) = delete;
  OnlineServer& operator=(const OnlineServer&) = delete;

  // Asynchronous submission; the future resolves when post-processing
  // finishes. Throws std::runtime_error after Stop().
  std::future<OnlineResponse> Submit(OnlineRequest request);

  // Completes all accepted requests, then joins every thread. Idempotent.
  void Stop();

  // Thread-safe load snapshot for routing/admission decisions.
  BatchSnapshot Snapshot() const;

  uint64_t accepted_count() const { return accepted_.load(); }
  uint64_t completed_count() const { return completed_.load(); }
  const Options& options() const { return options_; }
  const model::DiffusionModel& model() const { return model_; }

  // Salted-template-id stride for non-native resolutions (see
  // Options::extra_resolutions).
  static constexpr int kResolutionCacheStride = 1 << 20;

  // The model serving this grid, or null if the server accepts no such
  // resolution. The native numerics grid always resolves (to model()).
  const model::DiffusionModel* ModelForGrid(int grid_h, int grid_w) const;

  // The salted template id keying `grid`'s activation records (bare id for
  // the native grid), or -1 for an unsupported grid. Lets gateways hint
  // prefetches with the same key admission will Acquire() under.
  int EffectiveTemplateId(int template_id, int grid_h, int grid_w) const;
  // The resolved source (the configured one, or the private local store).
  const std::shared_ptr<cache::ActivationSource>& activation_source() const {
    return source_;
  }

 private:
  struct InFlight {
    uint64_t id = 0;
    OnlineRequest request;
    // Resolution routing, fixed at submit: the model serving this
    // request's grid and the (salted) template id keying its activations.
    const model::DiffusionModel* model = nullptr;
    int effective_template_id = 0;
    Matrix latent;
    // Pinned activation record for the request's lifetime: an evicting
    // source (remote store LRU front) can drop its reference without
    // invalidating a batch member mid-denoise.
    std::shared_ptr<const model::ActivationRecord> cache;
    int steps_done = 0;
    std::promise<OnlineResponse> promise;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point admitted;
    std::chrono::steady_clock::time_point denoise_done;
  };
  using InFlightPtr = std::unique_ptr<InFlight>;

  // Resolution route: the serving model plus its index (0 = native, used
  // to salt the cache template id). `model` null means unsupported grid.
  struct ResolutionRoute {
    const model::DiffusionModel* model = nullptr;
    int res_index = 0;
  };
  ResolutionRoute RouteForGrid(int grid_h, int grid_w) const;

  void DenoiseLoop();
  // Prepares the initial latent (the CPU-bound "pre-processing").
  void Preprocess(InFlight& item) const;
  // Decodes and fulfills the promise (the CPU-bound "post-processing").
  void Postprocess(InFlightPtr item);
  // Fails a request that lost the submit/Stop race (counts it completed).
  void Reject(InFlightPtr item);

  // Status-table transitions backing Snapshot().
  void StatusMarkWaiting(uint64_t id, double ratio);
  void StatusMarkRunning(uint64_t id);
  void StatusUpdateSteps(uint64_t id, int steps_done);
  void StatusRetire(uint64_t id);

  Options options_;
  model::DiffusionModel model_;
  // Models for Options::extra_resolutions (resolution index i+1); they
  // share model_'s weight family, so cross-resolution step panels are
  // bitwise-safe.
  std::vector<std::unique_ptr<model::DiffusionModel>> extra_models_;
  // The resolved activation source: options_.activation_source when set
  // (possibly shared across a fleet or remote), else a private local
  // store. Acquire() happens only on the denoise thread, but the source
  // itself may be shared, so it must be thread-safe (all of ours are).
  std::shared_ptr<cache::ActivationSource> source_;
  ConcurrentQueue<InFlightPtr> ready_;
  std::unique_ptr<ThreadPool> cpu_pool_;
  std::thread denoise_thread_;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<bool> stopping_{false};

  // Live load table: accepted-but-not-admitted requests (waiting) and batch
  // members (running, with their progress). Written on the submit path and
  // the denoise thread; read by Snapshot() from arbitrary threads.
  struct RunningState {
    double ratio = 0.0;
    int steps_done = 0;
  };
  mutable std::mutex status_mu_;
  std::map<uint64_t, double> waiting_status_;
  std::map<uint64_t, RunningState> running_status_;
};

}  // namespace flashps::runtime

#endif  // FLASHPS_SRC_RUNTIME_ONLINE_SERVER_H_
