// Compatibility shim: ConcurrentQueue moved to src/common so the kernel
// layer's ParallelFor pool can share it. The runtime-qualified name stays
// valid for existing callers.
#ifndef FLASHPS_SRC_RUNTIME_CONCURRENT_QUEUE_H_
#define FLASHPS_SRC_RUNTIME_CONCURRENT_QUEUE_H_

#include "src/common/concurrent_queue.h"

namespace flashps::runtime {

template <typename T>
using ConcurrentQueue = ::flashps::ConcurrentQueue<T>;

}  // namespace flashps::runtime

#endif  // FLASHPS_SRC_RUNTIME_CONCURRENT_QUEUE_H_
