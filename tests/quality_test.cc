#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/quality/metrics.h"

namespace flashps::quality {
namespace {

Matrix RandomImage(int h, int w, uint64_t seed) {
  Matrix img(h, w);
  Rng rng(seed);
  for (size_t i = 0; i < img.size(); ++i) {
    img.data()[i] = static_cast<float>(rng.NextDouble());
  }
  return img;
}

TEST(SsimTest, IdenticalImagesScoreOne) {
  const Matrix img = RandomImage(48, 48, 1);
  EXPECT_NEAR(Ssim(img, img), 1.0, 1e-9);
}

TEST(SsimTest, IndependentNoiseScoresLow) {
  const Matrix a = RandomImage(48, 48, 1);
  const Matrix b = RandomImage(48, 48, 2);
  EXPECT_LT(Ssim(a, b), 0.2);
}

TEST(SsimTest, MonotoneInNoiseLevel) {
  const Matrix clean = RandomImage(48, 48, 3);
  Rng rng(4);
  auto noisy = [&](float level) {
    Matrix out = clean;
    for (size_t i = 0; i < out.size(); ++i) {
      out.data()[i] = std::clamp(
          out.data()[i] + level * static_cast<float>(rng.Normal()), 0.0f, 1.0f);
    }
    return out;
  };
  const double s_small = Ssim(clean, noisy(0.02f));
  const double s_large = Ssim(clean, noisy(0.2f));
  EXPECT_GT(s_small, 0.9);
  EXPECT_GT(s_small, s_large);
}

TEST(SsimTest, SymmetricAndBounded) {
  const Matrix a = RandomImage(32, 32, 5);
  const Matrix b = RandomImage(32, 32, 6);
  EXPECT_NEAR(Ssim(a, b), Ssim(b, a), 1e-12);
  EXPECT_LE(Ssim(a, b), 1.0);
  EXPECT_GE(Ssim(a, b), -1.0);
}

TEST(SsimTest, TinyImagesShrinkWindow) {
  const Matrix a = RandomImage(6, 6, 7);
  EXPECT_NEAR(Ssim(a, a), 1.0, 1e-9);
}

TEST(PsnrTest, IdenticalAndKnownValues) {
  const Matrix img = RandomImage(32, 32, 21);
  EXPECT_DOUBLE_EQ(Psnr(img, img), 99.0);
  // Uniform offset of 0.1: MSE = 0.01 -> PSNR = 20 dB.
  Matrix shifted = img;
  for (size_t i = 0; i < shifted.size(); ++i) {
    shifted.data()[i] = img.data()[i] * 0.0f + 0.1f;
  }
  Matrix zeros(32, 32);
  EXPECT_NEAR(Psnr(zeros, shifted), 20.0, 1e-5);
}

TEST(PsnrTest, MonotoneInNoise) {
  const Matrix clean = RandomImage(32, 32, 22);
  Rng rng(23);
  auto noisy = [&](float level) {
    Matrix out = clean;
    for (size_t i = 0; i < out.size(); ++i) {
      out.data()[i] += level * static_cast<float>(rng.Normal());
    }
    return out;
  };
  EXPECT_GT(Psnr(clean, noisy(0.01f)), Psnr(clean, noisy(0.1f)));
}

TEST(SymmetricEigenTest, RecoversKnownSpectrum) {
  // Diagonal matrix: eigenvalues are the diagonal.
  std::vector<std::vector<double>> m = {
      {3.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 2.0}};
  std::vector<double> evals;
  std::vector<std::vector<double>> evecs;
  SymmetricEigen(m, evals, evecs);
  std::sort(evals.begin(), evals.end());
  EXPECT_NEAR(evals[0], 1.0, 1e-9);
  EXPECT_NEAR(evals[1], 2.0, 1e-9);
  EXPECT_NEAR(evals[2], 3.0, 1e-9);
}

TEST(SymmetricSqrtTest, SquaresBack) {
  // Random SPD matrix A = B*B^T.
  Rng rng(8);
  const int n = 6;
  std::vector<std::vector<double>> b(n, std::vector<double>(n));
  for (auto& row : b) {
    for (auto& v : row) {
      v = rng.Normal();
    }
  }
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        a[i][j] += b[i][k] * b[j][k];
      }
    }
  }
  const auto root = SymmetricSqrt(a);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int k = 0; k < n; ++k) {
        acc += root[i][k] * root[k][j];
      }
      EXPECT_NEAR(acc, a[i][j], 1e-6);
    }
  }
}

TEST(FrechetDistanceTest, ZeroForIdenticalStats) {
  const std::vector<Matrix> imgs = {RandomImage(48, 48, 9),
                                    RandomImage(48, 48, 10)};
  const FeatureExtractor extractor;
  const FeatureStats s = ComputeFeatureStats(imgs, extractor);
  EXPECT_NEAR(FrechetDistance(s, s), 0.0, 1e-6);
}

TEST(FrechetDistanceTest, GrowsWithMeanShift) {
  FeatureStats a;
  a.mean = {0.0, 0.0};
  a.cov = {{1.0, 0.0}, {0.0, 1.0}};
  FeatureStats b = a;
  b.mean = {1.0, 0.0};
  FeatureStats c = a;
  c.mean = {3.0, 0.0};
  EXPECT_NEAR(FrechetDistance(a, b), 1.0, 1e-9);
  EXPECT_NEAR(FrechetDistance(a, c), 9.0, 1e-9);
}

TEST(FrechetDistanceTest, KnownGaussianCovarianceCase) {
  // Same mean, covariances sigma1^2 I and sigma2^2 I:
  // d^2 = dims * (sigma1 - sigma2)^2.
  FeatureStats a;
  a.mean = {0.0, 0.0};
  a.cov = {{4.0, 0.0}, {0.0, 4.0}};
  FeatureStats b = a;
  b.cov = {{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_NEAR(FrechetDistance(a, b), 2.0 * (2.0 - 1.0) * (2.0 - 1.0), 1e-9);
}

TEST(FidScoreTest, SimilarSetsScoreLowerThanDissimilar) {
  std::vector<Matrix> ref;
  std::vector<Matrix> close;
  std::vector<Matrix> far;
  Rng rng(11);
  for (int i = 0; i < 6; ++i) {
    Matrix base = RandomImage(48, 48, 100 + i);
    ref.push_back(base);
    Matrix perturbed = base;
    for (size_t k = 0; k < perturbed.size(); ++k) {
      perturbed.data()[k] = std::clamp(
          perturbed.data()[k] + 0.02f * static_cast<float>(rng.Normal()),
          0.0f, 1.0f);
    }
    close.push_back(perturbed);
    Matrix unrelated = RandomImage(48, 48, 500 + i);
    // Shift its mean so the feature distributions differ clearly.
    for (size_t k = 0; k < unrelated.size(); ++k) {
      unrelated.data()[k] = 0.5f + 0.5f * unrelated.data()[k];
    }
    far.push_back(unrelated);
  }
  const double fid_close = FidScore(close, ref);
  const double fid_far = FidScore(far, ref);
  EXPECT_LT(fid_close, fid_far);
  EXPECT_GE(fid_close, 0.0);
}

TEST(ClipProxyTest, AlignedRegionScoresHigher) {
  Rng rng(12);
  const int patch = 4;
  trace::Mask mask = trace::GenerateBlobMask(8, 8, 0.25, rng);
  Matrix prompt_texture = RandomImage(32, 32, 13);

  // Perfectly aligned: the image equals the prompt texture in the mask.
  Matrix aligned = RandomImage(32, 32, 14);
  for (const int t : mask.masked_tokens) {
    const int gr = t / mask.grid_w;
    const int gc = t % mask.grid_w;
    for (int i = 0; i < patch; ++i) {
      for (int j = 0; j < patch; ++j) {
        aligned.at(gr * patch + i, gc * patch + j) =
            prompt_texture.at(gr * patch + i, gc * patch + j);
      }
    }
  }
  const Matrix unaligned = RandomImage(32, 32, 15);

  const double s_aligned = ClipProxyScore(aligned, prompt_texture, mask, patch);
  const double s_unaligned =
      ClipProxyScore(unaligned, prompt_texture, mask, patch);
  EXPECT_NEAR(s_aligned, 32.0, 1e-6);  // Correlation 1 -> 16 * 2.
  EXPECT_LT(s_unaligned, s_aligned);
}

}  // namespace
}  // namespace flashps::quality
