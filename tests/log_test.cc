#include <gtest/gtest.h>

#include "src/common/log.h"

namespace flashps {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, LevelRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LogTest, SuppressedLevelsDoNotEvaluateStreamArguments) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("payload");
  };
  FLASHPS_LOG(kDebug) << expensive();
  FLASHPS_LOG(kInfo) << expensive();
  EXPECT_EQ(evaluations, 0);  // Short-circuited below the threshold.
  FLASHPS_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, OffSilencesEverything) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  FLASHPS_LOG(kError) << [&evaluations] {
    ++evaluations;
    return 1;
  }();
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace flashps
