// Cache-tier integration over loopback:
//
//  1. A worker fleet whose activation source is a RemoteActivationStore
//     (one shared cache node) produces latent checksums bitwise-identical
//     to the same requests served by a fleet on the default local store,
//     and the node's hit/miss/byte counters reconcile with the client
//     side's.
//  2. Killing the cache daemon mid-run never fails a request: every
//     submission still completes — via local fallback — with checksums
//     identical to the healthy run.
//  3. A fleet pointed at a node that never existed degrades the same way.
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/cache/remote_store.h"
#include "src/common/rng.h"
#include "src/gateway/gateway.h"
#include "src/net/cache_node.h"
#include "src/net/tcp_server.h"

namespace flashps::net {
namespace {

constexpr int kNumRequests = 8;
constexpr int kNumTemplates = 3;

// Pulls `"key":<integer>` out of a flat metrics JSON string.
uint64_t JsonCounter(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    return ~0ull;
  }
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

gateway::GatewayOptions FleetOptions() {
  gateway::GatewayOptions options;
  options.num_workers = 2;
  options.worker.numerics = model::NumericsConfig::ForTests();
  options.worker.numerics.num_steps = 2;
  options.worker.max_batch = 3;
  options.admission_control = false;
  return options;
}

std::vector<runtime::OnlineRequest> MakeRequests(int count,
                                                 int first_template = 0) {
  const model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  Rng rng(2026);
  std::vector<runtime::OnlineRequest> requests;
  for (int i = 0; i < count; ++i) {
    runtime::OnlineRequest request;
    request.template_id = first_template + i % kNumTemplates;
    request.prompt_seed = 1000 + static_cast<uint64_t>(i);
    request.mask = trace::GenerateBlobMask(numerics.grid_h, numerics.grid_w,
                                           0.1 + 0.05 * i, rng);
    requests.push_back(request);
  }
  return requests;
}

// Runs every request through a fleet configured with `source` (null = the
// default worker-resolved local store) and returns the latent checksums.
std::vector<uint64_t> RunFleet(
    const std::vector<runtime::OnlineRequest>& requests,
    std::shared_ptr<cache::ActivationSource> source) {
  gateway::GatewayOptions options = FleetOptions();
  options.worker.activation_source = std::move(source);
  gateway::Gateway gw(options);
  std::vector<uint64_t> checksums;
  std::vector<std::future<runtime::OnlineResponse>> futures;
  for (const runtime::OnlineRequest& request : requests) {
    gateway::SubmitResult result = gw.Submit(request);
    EXPECT_TRUE(result.accepted());
    futures.push_back(std::move(result.future));
  }
  for (auto& future : futures) {
    checksums.push_back(LatentChecksum(future.get().image));
  }
  gw.Stop();
  return checksums;
}

cache::RemoteStoreOptions StoreOptionsFor(uint16_t port) {
  cache::RemoteStoreOptions options;
  options.host = "127.0.0.1";
  options.port = port;
  options.connect_attempts = 1;
  options.connect_backoff = std::chrono::milliseconds(1);
  return options;
}

TEST(CacheRpcIntegrationTest, RemoteFleetMatchesLocalFleetAndReconciles) {
  CacheNode node;
  TcpServer server(node.Service());
  ASSERT_TRUE(server.Start());

  const std::vector<runtime::OnlineRequest> requests =
      MakeRequests(kNumRequests);
  const std::vector<uint64_t> local = RunFleet(requests, nullptr);

  // --- cold fleet: every template misses, registers, publishes -------------
  auto cold_store = std::make_shared<cache::RemoteActivationStore>(
      StoreOptionsFor(server.port()));
  const std::vector<uint64_t> cold = RunFleet(requests, cold_store);
  ASSERT_EQ(cold.size(), local.size());
  for (size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ(cold[i], local[i]) << "request " << i
                                 << ": remote-sourced latent differs";
  }
  const cache::RemoteStoreStats cold_stats = cold_store->Stats();
  EXPECT_EQ(cold_stats.remote_misses,
            static_cast<uint64_t>(kNumTemplates));
  EXPECT_EQ(cold_stats.fallbacks, 0u);
  EXPECT_EQ(cold_stats.puts_ok, static_cast<uint64_t>(kNumTemplates));
  // Requests beyond the unique templates were coalesced or front-served.
  EXPECT_EQ(cold_stats.front_hits + cold_stats.singleflight_waits,
            static_cast<uint64_t>(kNumRequests - kNumTemplates));
  // Client and node byte counters agree.
  CacheNodeStats node_stats = node.Stats();
  EXPECT_EQ(node_stats.bytes_stored, cold_stats.remote_bytes_put);
  EXPECT_EQ(node_stats.puts > 0, true);

  // --- warm fleet: a fresh front fetches whole records remotely ------------
  auto warm_store = std::make_shared<cache::RemoteActivationStore>(
      StoreOptionsFor(server.port()));
  const std::vector<uint64_t> warm = RunFleet(requests, warm_store);
  for (size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ(warm[i], local[i]) << "request " << i
                                 << ": warm remote latent differs";
  }
  const cache::RemoteStoreStats warm_stats = warm_store->Stats();
  EXPECT_EQ(warm_stats.remote_hits, static_cast<uint64_t>(kNumTemplates));
  EXPECT_EQ(warm_stats.remote_misses, 0u);
  EXPECT_EQ(warm_stats.local_registrations, 0u);
  EXPECT_EQ(warm_stats.fallbacks, 0u);
  node_stats = node.Stats();
  EXPECT_EQ(node_stats.bytes_served, warm_stats.remote_bytes_fetched);
  EXPECT_EQ(node_stats.fetch_hits,
            warm_stats.remote_hits *
                static_cast<uint64_t>(2 /*steps*/ *
                                      FleetOptions().worker.numerics
                                          .num_blocks));

  server.Stop();
}

TEST(CacheRpcIntegrationTest, PrefetchFleetMatchesLocalAndPrefetchOffBitwise) {
  CacheNode node;
  TcpServer server(node.Service());
  ASSERT_TRUE(server.Start());

  const std::vector<runtime::OnlineRequest> requests =
      MakeRequests(kNumRequests);
  const std::vector<uint64_t> local = RunFleet(requests, nullptr);

  // Prefetch off: this run also publishes every template to the node.
  auto off_store = std::make_shared<cache::RemoteActivationStore>(
      StoreOptionsFor(server.port()));
  const std::vector<uint64_t> off = RunFleet(requests, off_store);

  // Prefetch on, warm node: the gateway's queue-ahead hints load each
  // template before its request reaches admission.
  cache::RemoteStoreOptions on_options = StoreOptionsFor(server.port());
  on_options.prefetch_workers = 2;
  auto on_store = std::make_shared<cache::RemoteActivationStore>(on_options);
  const std::vector<uint64_t> on = RunFleet(requests, on_store);

  // Pipelining the fetch must not change a single output bit.
  ASSERT_EQ(on.size(), local.size());
  for (size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ(off[i], local[i]) << "request " << i << " (prefetch off)";
    EXPECT_EQ(on[i], local[i]) << "request " << i << " (prefetch on)";
  }

  const cache::RemoteStoreStats stats = on_store->Stats();
  // The pipeline did real work: hints became wire fetches, and requests
  // were absorbed by them instead of stalling on foreground fetches.
  EXPECT_GE(stats.prefetch_issued, 1u);
  EXPECT_GE(stats.prefetch_coalesced, 1u);
  EXPECT_EQ(stats.prefetch_remote_misses, 0u);  // Node was warm.
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_EQ(stats.remote_misses, 0u);
  // Every Acquire is accounted for exactly once across the ladder.
  EXPECT_EQ(stats.front_hits + stats.singleflight_waits +
                stats.prefetch_coalesced + stats.remote_hits +
                stats.remote_misses + stats.fallbacks,
            static_cast<uint64_t>(kNumRequests));

  server.Stop();
}

TEST(CacheRpcIntegrationTest, PrefetchOnFleetSurvivesKilledNode) {
  auto node = std::make_unique<CacheNode>();
  auto server = std::make_unique<TcpServer>(node->Service());
  ASSERT_TRUE(server->Start());
  const uint16_t port = server->port();
  // The node dies before the fleet sends a byte: every queue-ahead
  // prefetch fails on the wire, and every request must still complete via
  // local fallback with bitwise-identical outputs.
  server->Stop();
  server.reset();
  node.reset();

  const std::vector<runtime::OnlineRequest> requests =
      MakeRequests(kNumRequests);
  const std::vector<uint64_t> reference = RunFleet(requests, nullptr);

  cache::RemoteStoreOptions store_options = StoreOptionsFor(port);
  store_options.prefetch_workers = 2;
  auto store = std::make_shared<cache::RemoteActivationStore>(store_options);
  const std::vector<uint64_t> degraded = RunFleet(requests, store);

  ASSERT_EQ(degraded.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(degraded[i], reference[i]) << "request " << i;
  }
  const cache::RemoteStoreStats stats = store->Stats();
  EXPECT_EQ(stats.remote_hits, 0u);
  EXPECT_EQ(stats.prefetch_remote_hits, 0u);
  EXPECT_GE(stats.fallbacks, 1u);
  EXPECT_EQ(stats.local_registrations, static_cast<uint64_t>(kNumTemplates));
}

TEST(CacheRpcIntegrationTest, GatewayMetricsCarryActivationSource) {
  CacheNode node;
  TcpServer server(node.Service());
  ASSERT_TRUE(server.Start());

  gateway::GatewayOptions options = FleetOptions();
  auto store = std::make_shared<cache::RemoteActivationStore>(
      StoreOptionsFor(server.port()));
  options.worker.activation_source = store;
  gateway::Gateway gw(options);
  gateway::SubmitResult result = gw.Submit(MakeRequests(1).front());
  ASSERT_TRUE(result.accepted());
  result.future.get();

  const std::string json = gw.MetricsJson();
  EXPECT_NE(json.find("\"activation_source\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"remote\""), std::string::npos);
  EXPECT_EQ(JsonCounter(json, "remote_misses"), 1u);
  // The gateway hinted the accepted request's template (even though this
  // store runs with the pipeline disabled, hints are still counted).
  EXPECT_EQ(JsonCounter(json, "prefetch_hints"), 1u);
  EXPECT_NE(json.find("\"prefetch_issued\":"), std::string::npos);

  gw.Stop();
  server.Stop();
}

TEST(CacheRpcIntegrationTest, KilledCacheNodeNeverFailsARequest) {
  auto node = std::make_unique<CacheNode>();
  auto server = std::make_unique<TcpServer>(node->Service());
  ASSERT_TRUE(server->Start());
  const uint16_t port = server->port();

  // Reference run on a local fleet: 4 warm templates + 3 post-kill ones.
  std::vector<runtime::OnlineRequest> warm_requests = MakeRequests(4);
  std::vector<runtime::OnlineRequest> late_requests =
      MakeRequests(3, /*first_template=*/100);
  std::vector<runtime::OnlineRequest> all = warm_requests;
  all.insert(all.end(), late_requests.begin(), late_requests.end());
  const std::vector<uint64_t> reference = RunFleet(all, nullptr);

  cache::RemoteStoreOptions store_options = StoreOptionsFor(port);
  store_options.call_timeout = std::chrono::milliseconds(2000);
  auto store = std::make_shared<cache::RemoteActivationStore>(store_options);
  gateway::GatewayOptions options = FleetOptions();
  options.worker.activation_source = store;
  gateway::Gateway gw(options);

  std::vector<std::future<runtime::OnlineResponse>> futures;
  for (const auto& request : warm_requests) {
    gateway::SubmitResult result = gw.Submit(request);
    ASSERT_TRUE(result.accepted());
    futures.push_back(std::move(result.future));
  }
  // Kill the cache daemon while the fleet may still be mid-flight, then
  // keep submitting: requests for templates the node never saw must all
  // complete via local fallback.
  server->Stop();
  server.reset();
  node.reset();
  for (const auto& request : late_requests) {
    gateway::SubmitResult result = gw.Submit(request);
    ASSERT_TRUE(result.accepted());
    futures.push_back(std::move(result.future));
  }

  ASSERT_EQ(futures.size(), reference.size());
  for (size_t i = 0; i < futures.size(); ++i) {
    const runtime::OnlineResponse response = futures[i].get();
    EXPECT_EQ(LatentChecksum(response.image), reference[i])
        << "request " << i << " diverged after the cache node died";
  }
  // The late templates could not have come from the dead node.
  const cache::RemoteStoreStats stats = store->Stats();
  EXPECT_GE(stats.fallbacks, static_cast<uint64_t>(late_requests.size()));
  EXPECT_EQ(stats.front_hits + stats.singleflight_waits + stats.remote_hits +
                stats.remote_misses + stats.fallbacks,
            static_cast<uint64_t>(futures.size()));
  gw.Stop();
}

TEST(CacheRpcIntegrationTest, NeverReachableNodeDegradesToLocal) {
  // Grab a port nothing listens on: bind an ephemeral server, then stop it.
  uint16_t dead_port = 0;
  {
    CacheNode node;
    TcpServer server(node.Service());
    ASSERT_TRUE(server.Start());
    dead_port = server.port();
    server.Stop();
  }

  const std::vector<runtime::OnlineRequest> requests = MakeRequests(6);
  const std::vector<uint64_t> reference = RunFleet(requests, nullptr);

  cache::RemoteStoreOptions store_options = StoreOptionsFor(dead_port);
  store_options.max_consecutive_failures = 2;
  store_options.degrade_cooldown = std::chrono::hours(1);
  auto store =
      std::make_shared<cache::RemoteActivationStore>(store_options);
  const std::vector<uint64_t> degraded = RunFleet(requests, store);

  ASSERT_EQ(degraded.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(degraded[i], reference[i]) << "request " << i;
  }
  const cache::RemoteStoreStats stats = store->Stats();
  EXPECT_EQ(stats.fallbacks, static_cast<uint64_t>(kNumTemplates));
  EXPECT_EQ(stats.remote_hits, 0u);
  EXPECT_GE(stats.degrade_trips, 1u);
}

}  // namespace
}  // namespace flashps::net
