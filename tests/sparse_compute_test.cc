// The gathered-panel sparse compute path (gather→GEMM→scatter), validated
// bitwise against the dense kernels and flows it replaces at every level:
// indexed-row GEMMs vs gather-then-GEMM, BlockForwardMaskedGathered vs the
// dense mask-aware block flows, and whole denoise runs with sparse_compute
// on vs off — including the edge masks (empty, full, single-row), partial
// cache plans, and thread-count invariance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "src/common/parallel_for.h"
#include "src/model/diffusion_model.h"
#include "src/model/transformer.h"
#include "src/tensor/matrix.h"
#include "src/tensor/naive.h"

namespace flashps {
namespace {

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return false;
  }
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(), a.bytes()) == 0;
}

Matrix RandomMatrix(int rows, int cols, uint64_t seed, float stddev = 1.0f) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillNormal(rng, stddev);
  return m;
}

// Random distinct sorted row subset of [0, rows) with ~ratio coverage.
std::vector<int> RandomRows(int rows, double ratio, Rng& rng) {
  std::vector<int> out;
  for (int r = 0; r < rows; ++r) {
    if (rng.Uniform(0.0, 1.0) < ratio) {
      out.push_back(r);
    }
  }
  return out;
}

trace::Mask MakeMask(int grid_h, int grid_w, const std::vector<int>& masked) {
  trace::Mask mask;
  mask.grid_h = grid_h;
  mask.grid_w = grid_w;
  mask.masked_tokens = masked;
  std::vector<bool> is_masked(static_cast<size_t>(grid_h * grid_w), false);
  for (const int t : masked) {
    is_masked[static_cast<size_t>(t)] = true;
  }
  for (int t = 0; t < grid_h * grid_w; ++t) {
    if (!is_masked[static_cast<size_t>(t)]) {
      mask.unmasked_tokens.push_back(t);
    }
  }
  return mask;
}

// ---------------------------------------------------------------------------
// Kernel level: the fused gather/scatter GEMMs vs their unfused compositions.

TEST(SparseComputeKernelTest, MatMulRowsMatchesGatherThenMatMul) {
  Rng rng(0xA11CE);
  for (const int m : {1, 7, 64, 130}) {
    for (const int k : {8, 96}) {
      const Matrix a = RandomMatrix(m, k, 1000 + static_cast<uint64_t>(m));
      const Matrix b = RandomMatrix(k, 48, 2000 + static_cast<uint64_t>(k));
      const Matrix dense = MatMul(a, b);
      for (const double ratio : {0.1, 0.5, 0.9}) {
        const std::vector<int> rows = RandomRows(m, ratio, rng);
        const Matrix got = MatMulRows(a, b, rows);
        ASSERT_EQ(got.rows(), static_cast<int>(rows.size()));
        for (size_t i = 0; i < rows.size(); ++i) {
          for (int j = 0; j < dense.cols(); ++j) {
            ASSERT_EQ(got.at(static_cast<int>(i), j), dense.at(rows[i], j))
                << "m=" << m << " k=" << k << " row " << rows[i];
          }
        }
      }
    }
  }
}

TEST(SparseComputeKernelTest, MatMulScatterRowsMatchesDenseThenMask) {
  // Property: scattering the gathered panel's GEMM into a prefilled output
  // equals computing the dense GEMM and masking — written rows bitwise from
  // MatMul, untouched rows bitwise from the prefill. Random masks.
  Rng rng(0xB0B);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 3 + static_cast<int>(rng.Uniform(0.0, 150.0));
    const int k = 4 + static_cast<int>(rng.Uniform(0.0, 100.0));
    const int n = 4 + static_cast<int>(rng.Uniform(0.0, 80.0));
    const Matrix x = RandomMatrix(m, k, 31 * static_cast<uint64_t>(trial) + 1);
    const Matrix b = RandomMatrix(k, n, 37 * static_cast<uint64_t>(trial) + 2);
    const std::vector<int> rows = RandomRows(m, rng.Uniform(0.0, 1.0), rng);
    const Matrix panel = GatherRows(x, rows);
    const Matrix cached =
        RandomMatrix(m, n, 41 * static_cast<uint64_t>(trial) + 3);

    Matrix out = cached;
    MatMulScatterRows(panel, b, rows, out);

    const Matrix dense = MatMul(x, b);
    std::vector<bool> written(static_cast<size_t>(m), false);
    for (const int r : rows) {
      written[static_cast<size_t>(r)] = true;
    }
    for (int r = 0; r < m; ++r) {
      const Matrix& want = written[static_cast<size_t>(r)] ? dense : cached;
      for (int j = 0; j < n; ++j) {
        ASSERT_EQ(out.at(r, j), want.at(r, j))
            << "trial " << trial << " row " << r << " written "
            << written[static_cast<size_t>(r)];
      }
    }
  }
}

TEST(SparseComputeKernelTest, EmptyFullAndSingleRowSubsets) {
  const Matrix a = RandomMatrix(33, 20, 7);
  const Matrix b = RandomMatrix(20, 16, 8);
  const Matrix dense = MatMul(a, b);

  const Matrix empty = MatMulRows(a, b, {});
  EXPECT_EQ(empty.rows(), 0);
  EXPECT_EQ(empty.cols(), 16);

  std::vector<int> all(33);
  for (int i = 0; i < 33; ++i) {
    all[static_cast<size_t>(i)] = i;
  }
  EXPECT_TRUE(BitwiseEqual(MatMulRows(a, b, all), dense));

  for (const int r : {0, 17, 32}) {
    const Matrix one = MatMulRows(a, b, {r});
    ASSERT_EQ(one.rows(), 1);
    for (int j = 0; j < 16; ++j) {
      EXPECT_EQ(one.at(0, j), dense.at(r, j));
    }
  }

  // Scatter with an empty panel must leave the output untouched.
  Matrix out = RandomMatrix(33, 16, 9);
  const Matrix before = out;
  MatMulScatterRows(Matrix(0, 20), b, {}, out);
  EXPECT_TRUE(BitwiseEqual(out, before));
}

TEST(SparseComputeKernelTest, ThreadCountInvariance) {
  // Large enough to cross the kernels' parallel dispatch threshold.
  const Matrix a = RandomMatrix(256, 192, 11);
  const Matrix b = RandomMatrix(192, 128, 12);
  Rng rng(13);
  const std::vector<int> rows = RandomRows(256, 0.4, rng);
  const Matrix panel = GatherRows(a, rows);
  const Matrix prefill = RandomMatrix(256, 128, 14);

  Matrix serial_gather, serial_scatter;
  {
    ComputeThreadsScope scope(1);
    serial_gather = MatMulRows(a, b, rows);
    serial_scatter = prefill;
    MatMulScatterRows(panel, b, rows, serial_scatter);
  }
  for (const int threads : {2, 5, 8}) {
    ComputeThreadsScope scope(threads);
    const Matrix gather = MatMulRows(a, b, rows);
    Matrix scatter = prefill;
    MatMulScatterRows(panel, b, rows, scatter);
    EXPECT_TRUE(BitwiseEqual(gather, serial_gather)) << threads << " threads";
    EXPECT_TRUE(BitwiseEqual(scatter, serial_scatter)) << threads << " threads";
  }
}

TEST(SparseComputeKernelTest, MatchesNaiveReferenceWithinTolerance) {
  // Against the scalar reference the blocked kernels may differ only by
  // FMA-contraction rounding (same bound the kernel-equivalence suite uses
  // for the dense kernels).
  const Matrix a = RandomMatrix(120, 100, 21);
  const Matrix b = RandomMatrix(100, 64, 22);
  Rng rng(23);
  const std::vector<int> rows = RandomRows(120, 0.3, rng);
  const Matrix got = MatMulRows(a, b, rows);
  const Matrix want = naive::MatMul(GatherRows(a, rows), b);
  ASSERT_EQ(got.rows(), want.rows());
  for (int r = 0; r < got.rows(); ++r) {
    for (int j = 0; j < got.cols(); ++j) {
      EXPECT_NEAR(got.at(r, j), want.at(r, j),
                  1e-4 * (1.0 + std::abs(want.at(r, j))));
    }
  }
}

// ---------------------------------------------------------------------------
// Block level: BlockForwardMaskedGathered vs the dense mask-aware flows.

struct BlockFixture {
  static constexpr int kGrid = 8;
  static constexpr int kTokens = kGrid * kGrid;
  static constexpr int kHidden = 24;

  BlockFixture() : rng(404), weights(model::BlockWeights::Random(kHidden, rng)) {
    bias = model::MakeDistanceBias(kGrid, kGrid, 0.5f);
    x0 = RandomMatrix(kTokens, kHidden, 71);
    cached_y = model::BlockForwardFull(weights, x0, bias, &cached_k, &cached_v);
  }

  // An input satisfying the replenish invariant wrt x0: unmasked rows equal
  // x0's, masked rows are fresh.
  Matrix PristineInput(const trace::Mask& mask, uint64_t seed) const {
    Matrix x = x0;
    const Matrix fresh = RandomMatrix(kTokens, kHidden, seed);
    ScatterRows(x, GatherRows(fresh, mask.masked_tokens), mask.masked_tokens);
    return x;
  }

  Rng rng;
  model::BlockWeights weights;
  Matrix bias;
  Matrix x0;
  Matrix cached_y, cached_k, cached_v;
};

TEST(SparseComputeBlockTest, GatheredMatchesMaskedKVForAnyInput) {
  BlockFixture f;
  Rng mask_rng(1);
  for (const double ratio : {0.1, 0.4, 0.8}) {
    const trace::Mask mask = trace::GenerateBlobMask(
        BlockFixture::kGrid, BlockFixture::kGrid, ratio, mask_rng);
    // Deliberately NOT pristine: arbitrary input.
    const Matrix x = RandomMatrix(BlockFixture::kTokens, BlockFixture::kHidden,
                                  900 + static_cast<uint64_t>(100 * ratio));
    const Matrix dense = model::BlockForwardMaskedKV(
        f.weights, x, f.bias, mask, f.cached_y, f.cached_k, f.cached_v);
    const Matrix gathered = model::BlockForwardMaskedGathered(
        f.weights, x, f.bias, mask, f.cached_y, f.cached_k, f.cached_v);
    EXPECT_TRUE(BitwiseEqual(gathered, dense)) << "ratio " << ratio;
  }
}

TEST(SparseComputeBlockTest, GatheredMatchesMaskedYUnderReplenishInvariant) {
  BlockFixture f;
  Rng mask_rng(2);
  for (const double ratio : {0.1, 0.4, 0.8}) {
    const trace::Mask mask = trace::GenerateBlobMask(
        BlockFixture::kGrid, BlockFixture::kGrid, ratio, mask_rng);
    const Matrix x =
        f.PristineInput(mask, 700 + static_cast<uint64_t>(100 * ratio));
    const Matrix dense =
        model::BlockForwardMaskedY(f.weights, x, f.bias, mask, f.cached_y);
    const Matrix gathered = model::BlockForwardMaskedGathered(
        f.weights, x, f.bias, mask, f.cached_y, f.cached_k, f.cached_v);
    EXPECT_TRUE(BitwiseEqual(gathered, dense)) << "ratio " << ratio;
  }
}

TEST(SparseComputeBlockTest, EdgeMasksEmptyFullSingle) {
  BlockFixture f;
  std::vector<int> all(BlockFixture::kTokens);
  for (int t = 0; t < BlockFixture::kTokens; ++t) {
    all[static_cast<size_t>(t)] = t;
  }
  const std::vector<std::vector<int>> masked_sets = {
      {}, all, {0}, {BlockFixture::kTokens - 1}, {17}};
  for (const auto& masked : masked_sets) {
    const trace::Mask mask =
        MakeMask(BlockFixture::kGrid, BlockFixture::kGrid, masked);
    const Matrix x = f.PristineInput(mask, 50 + masked.size());
    const Matrix dense_y =
        model::BlockForwardMaskedY(f.weights, x, f.bias, mask, f.cached_y);
    const Matrix dense_kv = model::BlockForwardMaskedKV(
        f.weights, x, f.bias, mask, f.cached_y, f.cached_k, f.cached_v);
    const Matrix gathered = model::BlockForwardMaskedGathered(
        f.weights, x, f.bias, mask, f.cached_y, f.cached_k, f.cached_v);
    EXPECT_TRUE(BitwiseEqual(gathered, dense_y)) << masked.size() << " masked";
    EXPECT_TRUE(BitwiseEqual(gathered, dense_kv)) << masked.size() << " masked";
  }
}

// ---------------------------------------------------------------------------
// Run level: whole denoise trajectories with sparse_compute on vs off.

struct RunFixture {
  RunFixture()
      : config(model::NumericsConfig::ForTests()),
        m(config),
        cache_kv(m.Register(0, /*record_kv=*/true)),
        cache_y(m.Register(0, /*record_kv=*/false)) {}

  Matrix Run(model::ComputeMode mode, const trace::Mask& mask, bool sparse,
             const model::ActivationRecord& cache,
             std::vector<bool> use_cache_blocks = {}) const {
    model::DiffusionModel::RunOptions opts;
    opts.mode = mode;
    opts.cache = &cache;
    opts.mask = &mask;
    opts.sparse_compute = sparse;
    opts.use_cache_blocks = std::move(use_cache_blocks);
    const Matrix tmpl = m.EncodeTemplate(0);
    Matrix latent = m.InitEditLatent(tmpl, mask, /*prompt_seed=*/5);
    return m.RunDenoise(std::move(latent), opts).final_latent;
  }

  model::NumericsConfig config;
  model::DiffusionModel m;
  model::ActivationRecord cache_kv;
  model::ActivationRecord cache_y;
};

TEST(SparseComputeRunTest, DenoiseBitwiseAcrossMaskRatiosBothModes) {
  RunFixture f;
  Rng mask_rng(9);
  for (const double ratio : {0.05, 0.1, 0.3, 0.6, 0.9}) {
    const trace::Mask mask = trace::GenerateBlobMask(
        f.config.grid_h, f.config.grid_w, ratio, mask_rng);
    for (const auto mode : {model::ComputeMode::kMaskAwareY,
                            model::ComputeMode::kMaskAwareKV}) {
      const Matrix dense = f.Run(mode, mask, /*sparse=*/false, f.cache_kv);
      const Matrix sparse = f.Run(mode, mask, /*sparse=*/true, f.cache_kv);
      EXPECT_TRUE(BitwiseEqual(sparse, dense))
          << model::ToString(mode) << " ratio " << ratio;
    }
  }
}

TEST(SparseComputeRunTest, DenoiseBitwiseOnEdgeMasks) {
  RunFixture f;
  std::vector<int> all(f.config.tokens());
  for (int t = 0; t < f.config.tokens(); ++t) {
    all[static_cast<size_t>(t)] = t;
  }
  for (const auto& masked :
       std::vector<std::vector<int>>{{}, all, {0}, {f.config.tokens() / 2}}) {
    const trace::Mask mask = MakeMask(f.config.grid_h, f.config.grid_w, masked);
    for (const auto mode : {model::ComputeMode::kMaskAwareY,
                            model::ComputeMode::kMaskAwareKV}) {
      const Matrix dense = f.Run(mode, mask, /*sparse=*/false, f.cache_kv);
      const Matrix sparse = f.Run(mode, mask, /*sparse=*/true, f.cache_kv);
      EXPECT_TRUE(BitwiseEqual(sparse, dense))
          << model::ToString(mode) << " " << masked.size() << " masked";
    }
  }
}

TEST(SparseComputeRunTest, PartialCachePlansFallBackBitwise) {
  // Full-computed blocks break the replenish invariant; the step loop must
  // fall back to the dense path exactly where needed and still match the
  // dense run bitwise. Plans cover: break mid-step (restored by the next
  // cached block), break at the last block (permanent latent drift), and
  // first block uncached.
  RunFixture f;
  Rng mask_rng(10);
  const trace::Mask mask =
      trace::GenerateBlobMask(f.config.grid_h, f.config.grid_w, 0.2, mask_rng);
  const int blocks = f.config.num_blocks;
  std::vector<std::vector<bool>> plans;
  plans.push_back(std::vector<bool>(static_cast<size_t>(blocks), true));
  for (int off : {0, 1, blocks - 1}) {
    std::vector<bool> plan(static_cast<size_t>(blocks), true);
    plan[static_cast<size_t>(off)] = false;
    plans.push_back(plan);
  }
  for (const auto& plan : plans) {
    for (const auto mode : {model::ComputeMode::kMaskAwareY,
                            model::ComputeMode::kMaskAwareKV}) {
      const Matrix dense = f.Run(mode, mask, false, f.cache_kv, plan);
      const Matrix sparse = f.Run(mode, mask, true, f.cache_kv, plan);
      EXPECT_TRUE(BitwiseEqual(sparse, dense)) << model::ToString(mode);
    }
  }
}

TEST(SparseComputeRunTest, YModeWithoutKvRecordDegradesToDense) {
  // A Y-only record (e.g. from a remote tier that never stored K/V) cannot
  // feed the gathered path; sparse_compute must silently serve the dense
  // flow instead of crashing or drifting.
  RunFixture f;
  Rng mask_rng(11);
  const trace::Mask mask =
      trace::GenerateBlobMask(f.config.grid_h, f.config.grid_w, 0.25, mask_rng);
  const Matrix dense =
      f.Run(model::ComputeMode::kMaskAwareY, mask, false, f.cache_y);
  const Matrix sparse =
      f.Run(model::ComputeMode::kMaskAwareY, mask, true, f.cache_y);
  EXPECT_TRUE(BitwiseEqual(sparse, dense));
}

TEST(SparseComputeRunTest, StepRangeChunksMatchWholeRun) {
  // The serving engines advance one step at a time; chunked sparse runs
  // must land on the same bits as one whole-trajectory call.
  RunFixture f;
  Rng mask_rng(12);
  const trace::Mask mask =
      trace::GenerateBlobMask(f.config.grid_h, f.config.grid_w, 0.15, mask_rng);
  model::DiffusionModel::RunOptions opts;
  opts.mode = model::ComputeMode::kMaskAwareY;
  opts.cache = &f.cache_kv;
  opts.mask = &mask;
  opts.sparse_compute = true;

  const Matrix tmpl = f.m.EncodeTemplate(0);
  const Matrix init = f.m.InitEditLatent(tmpl, mask, /*prompt_seed=*/5);

  Matrix chunked = init;
  for (int s = 0; s < f.config.num_steps; ++s) {
    chunked = f.m.RunStepRange(std::move(chunked), opts, s, s + 1);
  }
  const Matrix whole =
      f.m.RunStepRange(init, opts, 0, f.config.num_steps);
  EXPECT_TRUE(BitwiseEqual(chunked, whole));

  const Matrix dense_whole = [&] {
    model::DiffusionModel::RunOptions dense_opts = opts;
    dense_opts.sparse_compute = false;
    return f.m.RunStepRange(init, dense_opts, 0, f.config.num_steps);
  }();
  EXPECT_TRUE(BitwiseEqual(whole, dense_whole));
}

// ---------------------------------------------------------------------------
// Batch level: the cross-request (and cross-resolution) gathered step panel.

TEST(SparseComputeBatchTest, StepBatchGatheredMatchesSoloAcrossResolutions) {
  // Three models sharing one weight family (equal weight_seed, hidden,
  // num_blocks) at three latent grids. Advancing all requests through the
  // shared panel must land every latent on the same bits as solo
  // per-request RunStepRange calls — the property that makes hybrid-
  // resolution patch batching free of quality drift.
  const model::NumericsConfig native = model::NumericsConfig::ForTests();
  model::NumericsConfig small = native;
  small.grid_h = 8;
  small.grid_w = 8;
  model::NumericsConfig large = native;
  large.grid_h = 16;
  large.grid_w = 12;
  const model::DiffusionModel m_native(native);
  const model::DiffusionModel m_small(small);
  const model::DiffusionModel m_large(large);

  struct Member {
    const model::DiffusionModel* m;
    const model::NumericsConfig* c;
    double ratio;
    uint64_t seed;
  };
  const std::vector<Member> members = {
      {&m_native, &native, 0.2, 41},
      {&m_small, &small, 0.5, 42},
      {&m_large, &large, 0.1, 43},
      {&m_native, &native, 0.7, 44},  // Two requests on one model.
  };

  Rng mask_rng(0xBA7C4);
  std::vector<model::ActivationRecord> caches;
  std::vector<trace::Mask> masks;
  std::vector<Matrix> solo;
  std::vector<Matrix> batched;
  caches.reserve(members.size());
  for (const Member& member : members) {
    caches.push_back(member.m->Register(0, /*record_kv=*/true));
    masks.push_back(trace::GenerateBlobMask(member.c->grid_h, member.c->grid_w,
                                            member.ratio, mask_rng));
    const Matrix tmpl = member.m->EncodeTemplate(0);
    Matrix latent = member.m->InitEditLatent(tmpl, masks.back(), member.seed);
    solo.push_back(latent);
    batched.push_back(std::move(latent));
  }

  for (int step = 0; step < native.num_steps; ++step) {
    std::vector<model::DiffusionModel::StepBatchMember> panel;
    for (size_t i = 0; i < members.size(); ++i) {
      panel.push_back({members[i].m, &batched[i], &masks[i], &caches[i], step});
    }
    model::DiffusionModel::RunStepBatchGathered(panel);
    for (size_t i = 0; i < members.size(); ++i) {
      model::DiffusionModel::RunOptions opts;
      opts.mode = model::ComputeMode::kMaskAwareY;
      opts.cache = &caches[i];
      opts.mask = &masks[i];
      opts.sparse_compute = true;
      solo[i] = members[i].m->RunStepRange(std::move(solo[i]), opts, step,
                                           step + 1);
      ASSERT_TRUE(BitwiseEqual(batched[i], solo[i]))
          << "member " << i << " step " << step;
    }
  }
}

TEST(SparseComputeBatchTest, SingleMemberPanelIsTheSoloPath) {
  // Degenerate batch: a panel of one must be exactly the solo step.
  const model::NumericsConfig config = model::NumericsConfig::ForTests();
  const model::DiffusionModel m(config);
  const model::ActivationRecord cache = m.Register(0, /*record_kv=*/true);
  Rng mask_rng(0x50F0);
  const trace::Mask mask =
      trace::GenerateBlobMask(config.grid_h, config.grid_w, 0.3, mask_rng);
  const Matrix tmpl = m.EncodeTemplate(0);
  Matrix batched = m.InitEditLatent(tmpl, mask, /*prompt_seed=*/6);
  Matrix solo = batched;

  model::DiffusionModel::RunOptions opts;
  opts.mode = model::ComputeMode::kMaskAwareY;
  opts.cache = &cache;
  opts.mask = &mask;
  opts.sparse_compute = true;
  for (int step = 0; step < config.num_steps; ++step) {
    std::vector<model::DiffusionModel::StepBatchMember> panel = {
        {&m, &batched, &mask, &cache, step}};
    model::DiffusionModel::RunStepBatchGathered(panel);
    solo = m.RunStepRange(std::move(solo), opts, step, step + 1);
  }
  EXPECT_TRUE(BitwiseEqual(batched, solo));
}

TEST(SparseComputeRunTest, ThreadCountInvariance) {
  RunFixture f;
  Rng mask_rng(13);
  const trace::Mask mask =
      trace::GenerateBlobMask(f.config.grid_h, f.config.grid_w, 0.2, mask_rng);
  Matrix serial;
  {
    ComputeThreadsScope scope(1);
    serial = f.Run(model::ComputeMode::kMaskAwareY, mask, true, f.cache_kv);
  }
  ComputeThreadsScope scope(4);
  const Matrix threaded =
      f.Run(model::ComputeMode::kMaskAwareY, mask, true, f.cache_kv);
  EXPECT_TRUE(BitwiseEqual(threaded, serial));
}

}  // namespace
}  // namespace flashps
