// Loopback integration: the TCP frontier end-to-end against an identical
// in-process gateway.
//
// A TcpServer fronts a 2-worker gateway on an ephemeral port; a
// net::Client pipelines N requests at it. The same N requests (same
// template ids, same masks, same prompt seeds) then run through a second
// gateway configured identically via plain Gateway::Submit. Because
// per-request outputs are bitwise-deterministic in (template, mask, seed,
// numerics) regardless of batching or thread interleaving, the remote
// latent checksums must equal the in-process ones, and the statuses must
// match one for one. The daemon's own MetricsJson() counters — fetched
// over the wire — must agree with what the client observed.
#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/net/client.h"
#include "src/net/tcp_server.h"
#include "src/trace/workload.h"

namespace flashps::net {
namespace {

constexpr int kNumRequests = 8;

gateway::GatewayOptions TwoWorkerOptions() {
  gateway::GatewayOptions options;
  options.num_workers = 2;
  options.worker.numerics = model::NumericsConfig::ForTests();
  options.worker.numerics.num_steps = 2;
  options.worker.max_batch = 3;
  options.admission_control = false;
  return options;
}

std::vector<runtime::OnlineRequest> MakeRequests() {
  const model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  Rng rng(2026);
  std::vector<runtime::OnlineRequest> requests;
  for (int i = 0; i < kNumRequests; ++i) {
    runtime::OnlineRequest request;
    request.template_id = i % 3;
    request.prompt_seed = 1000 + static_cast<uint64_t>(i);
    request.mask = trace::GenerateBlobMask(numerics.grid_h, numerics.grid_w,
                                           0.1 + 0.05 * i, rng);
    requests.push_back(request);
  }
  return requests;
}

// Pulls `"key":<integer>` out of a flat metrics JSON string.
uint64_t JsonCounter(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    return ~0ull;
  }
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(NetIntegrationTest, LoopbackMatchesInProcessGateway) {
  const std::vector<runtime::OnlineRequest> requests = MakeRequests();

  // --- remote leg: pipelined over one TCP connection -----------------------
  gateway::Gateway remote_gateway(TwoWorkerOptions());
  TcpServer server(remote_gateway);
  ASSERT_TRUE(server.Start());
  ASSERT_NE(server.port(), 0);

  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.Connect());
  std::vector<uint64_t> seqs;
  for (const runtime::OnlineRequest& request : requests) {
    WireRequest wire;
    wire.denoise_steps = 2;
    wire.request = request;
    const uint64_t seq = client.Send(wire);
    ASSERT_NE(seq, 0u);
    seqs.push_back(seq);
  }
  std::vector<WireResponse> remote;
  for (uint64_t seq : seqs) {
    auto response = client.Await(seq, std::chrono::milliseconds(60000));
    ASSERT_TRUE(response.has_value())
        << "seq " << seq << ": " << ToString(client.last_error());
    remote.push_back(*response);
  }

  // --- in-process leg: identical gateway, plain Submit ---------------------
  gateway::Gateway local_gateway(TwoWorkerOptions());
  std::vector<gateway::SubmitStatus> local_status;
  std::vector<uint64_t> local_checksum;
  for (const runtime::OnlineRequest& request : requests) {
    gateway::SubmitResult result = local_gateway.Submit(request);
    local_status.push_back(result.status);
    ASSERT_TRUE(result.accepted());
    local_checksum.push_back(LatentChecksum(result.future.get().image));
  }
  local_gateway.Stop();

  // --- equivalence ---------------------------------------------------------
  ASSERT_EQ(remote.size(), requests.size());
  for (size_t i = 0; i < remote.size(); ++i) {
    EXPECT_EQ(remote[i].submit_status(), local_status[i]) << "request " << i;
    EXPECT_EQ(remote[i].latent_checksum, local_checksum[i])
        << "request " << i << ": remote and in-process latents differ";
    EXPECT_GE(remote[i].e2e_us, 0);
    EXPECT_GE(remote[i].worker_id, 0);
  }
  // Pipelining really happened on one connection.
  EXPECT_EQ(server.Stats().connections_accepted, 1u);
  EXPECT_EQ(server.Stats().submits_accepted,
            static_cast<uint64_t>(kNumRequests));

  // --- metrics over the wire match the client's view -----------------------
  auto metrics = client.QueryMetrics(std::chrono::milliseconds(10000));
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(JsonCounter(*metrics, "submitted"),
            static_cast<uint64_t>(kNumRequests));
  EXPECT_EQ(JsonCounter(*metrics, "accepted"),
            static_cast<uint64_t>(kNumRequests));
  EXPECT_EQ(JsonCounter(*metrics, "completed"),
            static_cast<uint64_t>(kNumRequests));

  server.Stop();
  remote_gateway.Stop();
}

// Graceful drain racing live submitters: one thread hammers the server
// with pipelined submits over fresh connections while the main thread
// Stop()s it mid-stream. Every Await must either produce a real reply or
// fail cleanly (connection closed / rejected), the server must come down
// with nothing left in flight, and (under TSan) the poll/completer/
// submitter interleavings must be race-free.
TEST(NetIntegrationTest, StopRacesConcurrentSubmitsCleanly) {
  gateway::Gateway gateway(TwoWorkerOptions());
  TcpServer server(gateway);
  ASSERT_TRUE(server.Start());
  const uint16_t port = server.port();

  std::atomic<bool> stop_requested{false};
  std::atomic<uint64_t> replies{0};
  std::thread pounder([&] {
    const std::vector<runtime::OnlineRequest> requests = MakeRequests();
    ClientOptions one_shot;
    one_shot.connect_attempts = 1;
    while (!stop_requested.load()) {
      Client client("127.0.0.1", port, one_shot);
      if (!client.Connect()) {
        break;  // Listener is gone: the drain won.
      }
      std::vector<uint64_t> seqs;
      for (const runtime::OnlineRequest& request : requests) {
        WireRequest wire;
        wire.denoise_steps = 2;
        wire.request = request;
        const uint64_t seq = client.Send(wire);
        if (seq == 0) {
          break;  // Write failed mid-drain; also fine.
        }
        seqs.push_back(seq);
      }
      for (uint64_t seq : seqs) {
        if (client.Await(seq, std::chrono::milliseconds(30000)).has_value()) {
          replies.fetch_add(1);
        }
      }
    }
  });

  // Let the pounder get traffic in flight, then drain under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.Stop();
  stop_requested.store(true);
  pounder.join();
  gateway.Stop();

  EXPECT_EQ(server.inflight(), 0u);
  const TcpServerStats stats = server.Stats();
  EXPECT_GE(stats.submits_accepted, replies.load());
  EXPECT_EQ(stats.connections_closed, stats.connections_accepted);
}

TEST(NetIntegrationTest, AuthTokenGatesSessions) {
  gateway::Gateway gateway(TwoWorkerOptions());
  TcpServerOptions options;
  options.auth_token = "s3cret";
  TcpServer server(gateway, options);
  ASSERT_TRUE(server.Start());

  // No token: the TCP session opens (no handshake attempted), but the
  // first real frame gets kError(kUnauthorized) and the connection drops.
  Client bare("127.0.0.1", server.port());
  ASSERT_TRUE(bare.Connect());
  EXPECT_FALSE(
      bare.QueryMetrics(std::chrono::milliseconds(2000)).has_value());

  // Wrong token: the handshake itself is refused.
  ClientOptions wrong;
  wrong.auth_token = "nope";
  Client impostor("127.0.0.1", server.port(), wrong);
  EXPECT_FALSE(impostor.Connect());

  // Right token: full service, including submits.
  ClientOptions right;
  right.auth_token = "s3cret";
  Client good("127.0.0.1", server.port(), right);
  ASSERT_TRUE(good.Connect());
  EXPECT_TRUE(
      good.QueryMetrics(std::chrono::milliseconds(10000)).has_value());
  WireRequest wire;
  wire.denoise_steps = 2;
  wire.request = MakeRequests()[0];
  auto response = good.Call(wire, std::chrono::milliseconds(60000));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->submit_status(), gateway::SubmitStatus::kAccepted);

  const TcpServerStats stats = server.Stats();
  EXPECT_GE(stats.auth_ok, 1u);
  EXPECT_GE(stats.unauthorized, 2u);
  server.Stop();
  gateway.Stop();
}

TEST(NetIntegrationTest, TokenlessDaemonAcknowledgesBlindHandshake) {
  gateway::Gateway gateway(TwoWorkerOptions());
  TcpServer server(gateway);  // No token: open frontier.
  ASSERT_TRUE(server.Start());

  // A client configured with a token handshakes blindly; a tokenless
  // daemon still acks, so mixed fleets roll out without flag-day locking.
  ClientOptions token;
  token.auth_token = "s3cret";
  Client client("127.0.0.1", server.port(), token);
  ASSERT_TRUE(client.Connect());
  EXPECT_TRUE(
      client.QueryMetrics(std::chrono::milliseconds(10000)).has_value());
  server.Stop();
  gateway.Stop();
}

TEST(NetIntegrationTest, DrainingServerRejectsWithShutdownStatus) {
  gateway::Gateway gateway(TwoWorkerOptions());
  TcpServer server(gateway);
  ASSERT_TRUE(server.Start());

  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.Connect());

  // A full stop: the listener closes, so new connections are refused.
  server.Stop();
  ClientOptions one_shot;
  one_shot.connect_attempts = 1;
  Client late("127.0.0.1", server.port(), one_shot);
  EXPECT_FALSE(late.Connect());
  gateway.Stop();
}

}  // namespace
}  // namespace flashps::net
