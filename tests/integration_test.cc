// Cross-module integration tests: the pieces the unit suites exercise in
// isolation, wired together the way the benchmarks and the Service use them.
#include <gtest/gtest.h>

#include "src/cache/activation_store.h"
#include "src/cluster/simulation.h"
#include "src/model/diffusion_model.h"
#include "src/pipeline/pipeline.h"
#include "src/quality/metrics.h"
#include "src/sched/latency_model.h"

namespace flashps {
namespace {

TEST(PlannerToNumericsIntegration, DpCacheDecisionsPreserveQuality) {
  // Feed Algorithm 1's per-block cache decisions (computed on the timing
  // model) into the real numerics: quality must stay close to exact
  // computation regardless of which blocks the DP picked.
  const auto timing = model::TimingConfig::Get(model::ModelKind::kSdxl);
  const auto spec = device::DeviceSpec::Get(timing.gpu);
  const model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  const model::DiffusionModel m(numerics);
  cache::ActivationStore store;
  Rng rng(21);

  for (const double ratio : {0.08, 0.25}) {
    const double ratios[] = {ratio};
    const auto workload = model::BuildStepWorkload(
        timing, ratios, model::ComputeMode::kMaskAwareY);
    const auto d = model::ComputeStepDurations(timing, spec, workload);
    auto plan = pipeline::PlanBubbleFree(d.compute_with_cache,
                                         d.compute_without_cache, d.load);
    // Map the (possibly longer) timing-side plan onto the numerics blocks.
    std::vector<bool> use_cache(numerics.num_blocks);
    for (int b = 0; b < numerics.num_blocks; ++b) {
      use_cache[b] = plan.use_cache[b % plan.use_cache.size()];
    }

    const trace::Mask mask = trace::GenerateBlobMask(
        numerics.grid_h, numerics.grid_w, ratio, rng);
    model::DiffusionModel::RunOptions exact;
    const Matrix reference = m.EditImage(1, mask, 77, exact);

    model::DiffusionModel::RunOptions planned;
    planned.mode = model::ComputeMode::kMaskAwareY;
    planned.cache = &store.GetOrRegister(m, 1);
    planned.mask = &mask;
    planned.use_cache_blocks = use_cache;
    const Matrix image = m.EditImage(1, mask, 77, planned);

    EXPECT_GT(quality::Ssim(reference, image), 0.85) << "ratio " << ratio;
  }
}

TEST(RegressionToWorkerIntegration, SchedulerEstimatesTrackWorkerLatency) {
  // The scheduler's regression-estimated step latency must track the
  // serving engine's actual step latency across batch compositions.
  const auto engine = serving::EngineConfig::ForSystem(
      serving::SystemKind::kFlashPS, model::ModelKind::kSdxl);
  const serving::Worker worker(0, engine);
  const auto lm = sched::LatencyModel::FitOffline(engine.model_config,
                                                  engine.mode);
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const int batch = 1 + static_cast<int>(rng.NextBelow(8));
    std::vector<double> ratios;
    for (int i = 0; i < batch; ++i) {
      ratios.push_back(0.02 + 0.6 * rng.NextDouble());
    }
    const double actual = worker.StepLatency(ratios).seconds();
    const double estimated = lm.EstimateStepLatency(ratios).seconds();
    EXPECT_NEAR(estimated, actual, 0.30 * actual + 0.003)
        << "batch " << batch;
  }
}

TEST(ClusterQualityIntegration, EndToEndLatencyAndQualityTogether) {
  // One scenario through both halves: the cluster simulation's latency
  // advantage and the numerics' quality, on the same request set.
  trace::WorkloadSpec spec;
  spec.num_requests = 30;
  spec.rps = 1.5;
  spec.denoise_steps = 10;
  const auto requests = trace::GenerateWorkload(spec);

  cluster::ClusterConfig flash;
  flash.num_workers = 2;
  flash.engine = serving::EngineConfig::ForSystem(
      serving::SystemKind::kFlashPS, model::ModelKind::kSdxl);
  flash.engine.model_config.denoise_steps = 10;
  cluster::ClusterConfig diffusers = flash;
  diffusers.engine = serving::EngineConfig::ForSystem(
      serving::SystemKind::kDiffusers, model::ModelKind::kSdxl);
  diffusers.engine.model_config.denoise_steps = 10;
  diffusers.policy = sched::RoutePolicy::kRequestCount;

  const auto flash_result = cluster::RunClusterSim(flash, requests);
  const auto diffusers_result = cluster::RunClusterSim(diffusers, requests);
  EXPECT_LT(flash_result.total_latency_s.Mean(),
            diffusers_result.total_latency_s.Mean());

  // Quality spot check on a few of the same requests.
  const model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  const model::DiffusionModel m(numerics);
  cache::ActivationStore store;
  Rng rng(41);
  for (int i = 0; i < 3; ++i) {
    const auto& r = requests[i];
    const trace::Mask mask = trace::GenerateBlobMask(
        numerics.grid_h, numerics.grid_w, r.mask_ratio, rng);
    model::DiffusionModel::RunOptions exact;
    const Matrix reference =
        m.EditImage(r.template_id % 8, mask, r.id, exact);
    model::DiffusionModel::RunOptions mask_aware;
    mask_aware.mode = model::ComputeMode::kMaskAwareY;
    mask_aware.cache = &store.GetOrRegister(m, r.template_id % 8);
    mask_aware.mask = &mask;
    const Matrix image =
        m.EditImage(r.template_id % 8, mask, r.id, mask_aware);
    EXPECT_GT(quality::Ssim(reference, image), 0.85);
  }
}

TEST(CacheEngineWorkerIntegration, EvictionChurnStaysConsistent) {
  // Heavy template churn against a tiny host tier: every request must still
  // complete, promotions must be accounted, and host usage bounded.
  const auto engine = serving::EngineConfig::ForSystem(
      serving::SystemKind::kFlashPS, model::ModelKind::kSdxl);
  const auto spec = device::DeviceSpec::Get(engine.model_config.gpu);
  const uint64_t bytes = engine.model_config.TemplateCacheStoreBytes();
  cache::CacheEngine cache_engine(3 * bytes, spec);
  for (int t = 0; t < 30; ++t) {
    cache_engine.RegisterTemplate(t, bytes, TimePoint());
  }
  serving::Worker worker(0, engine);
  worker.AttachCache(&cache_engine);

  Rng rng(51);
  TimePoint t;
  for (uint64_t i = 0; i < 40; ++i) {
    trace::Request r;
    r.id = i;
    r.template_id = static_cast<int>(rng.NextBelow(30));
    r.mask_ratio = 0.05 + 0.4 * rng.NextDouble();
    r.denoise_steps = 10;
    t = t + Duration::Seconds(rng.Exponential(0.5));
    worker.AdvanceTo(t);
    worker.Enqueue(r, t);
  }
  worker.Drain();
  EXPECT_EQ(worker.TakeCompleted().size(), 40u);
  EXPECT_LE(cache_engine.host_bytes_used(), cache_engine.host_capacity());
  EXPECT_GT(cache_engine.stats().disk_promotions, 0u);
  EXPECT_GT(cache_engine.stats().evictions, 0u);
}

TEST(TeaCacheBatchGateIntegration, BatchedSkippingIsLessAggressive) {
  const auto engine = serving::EngineConfig::ForSystem(
      serving::SystemKind::kTeaCache, model::ModelKind::kSdxl);
  const serving::Worker worker(0, engine);
  EXPECT_GT(worker.EffectiveSteps(8), worker.EffectiveSteps(1));
  EXPECT_LT(worker.EffectiveSteps(8), engine.model_config.denoise_steps);
}

}  // namespace
}  // namespace flashps
