#include <gtest/gtest.h>

#include <cmath>

#include "src/model/transformer.h"

namespace flashps::model {
namespace {

constexpr int kGrid = 6;
constexpr int kTokens = kGrid * kGrid;
constexpr int kHidden = 16;

struct Fixture {
  Fixture() : rng(101), weights(BlockWeights::Random(kHidden, rng)) {
    bias = MakeDistanceBias(kGrid, kGrid, 0.4f);
    Rng mask_rng(7);
    mask = trace::GenerateBlobMask(kGrid, kGrid, 0.3, mask_rng);
    x = Matrix(kTokens, kHidden);
    Rng data_rng(11);
    x.FillNormal(data_rng, 1.0f);
  }
  Rng rng;
  BlockWeights weights;
  Matrix bias;
  trace::Mask mask;
  Matrix x;
};

TEST(BlockWeightsTest, ShapesAndDeterminism) {
  Rng a(5);
  Rng b(5);
  const BlockWeights wa = BlockWeights::Random(kHidden, a);
  const BlockWeights wb = BlockWeights::Random(kHidden, b);
  EXPECT_EQ(wa.wq.rows(), kHidden);
  EXPECT_EQ(wa.w1.cols(), 4 * kHidden);
  EXPECT_EQ(wa.w2.rows(), 4 * kHidden);
  for (size_t i = 0; i < wa.wq.size(); ++i) {
    EXPECT_EQ(wa.wq.data()[i], wb.wq.data()[i]);
  }
}

TEST(DistanceBiasTest, ZeroDiagonalSymmetricNegative) {
  const Matrix bias = MakeDistanceBias(4, 5, 0.5f);
  ASSERT_EQ(bias.rows(), 20);
  for (int i = 0; i < bias.rows(); ++i) {
    EXPECT_EQ(bias.at(i, i), 0.0f);
    for (int j = 0; j < bias.cols(); ++j) {
      EXPECT_LE(bias.at(i, j), 0.0f);
      EXPECT_EQ(bias.at(i, j), bias.at(j, i));
    }
  }
  // Adjacent cells are penalized less than distant ones.
  EXPECT_GT(bias.at(0, 1), bias.at(0, 19));
}

TEST(BlockForwardFullTest, OutputFiniteAndBounded) {
  Fixture f;
  const Matrix y = BlockForwardFull(f.weights, f.x, f.bias);
  ASSERT_EQ(y.rows(), kTokens);
  ASSERT_EQ(y.cols(), kHidden);
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
  // Residual structure keeps magnitudes in a sane band.
  EXPECT_LT(FrobeniusNorm(y), 100.0 * FrobeniusNorm(f.x) + 100.0);
}

TEST(BlockForwardFullTest, ExportsKV) {
  Fixture f;
  Matrix k;
  Matrix v;
  const Matrix y = BlockForwardFull(f.weights, f.x, f.bias, &k, &v);
  EXPECT_EQ(k.rows(), kTokens);
  EXPECT_EQ(v.rows(), kTokens);
  EXPECT_GT(FrobeniusNorm(k), 0.0);
  (void)y;
}

TEST(BlockForwardMaskedYTest, ExactWhenCacheComesFromSameInput) {
  // If the cached Y was produced by a full pass over the *same* input, the
  // mask-aware flow reproduces the full output exactly: unmasked rows are
  // replenished verbatim and masked rows see identical K/V.
  Fixture f;
  const Matrix y_full = BlockForwardFull(f.weights, f.x, f.bias);
  const Matrix y_masked =
      BlockForwardMaskedY(f.weights, f.x, f.bias, f.mask, y_full);
  for (size_t i = 0; i < y_full.size(); ++i) {
    EXPECT_NEAR(y_masked.data()[i], y_full.data()[i], 2e-4f);
  }
}

TEST(BlockForwardMaskedKVTest, MatchesYFlowWithConsistentCache) {
  // With K/V caches recorded from the same registration input that produced
  // the cached Y, the two mask-aware flows are numerically equivalent
  // (§3.1: the alternative differs in cost, not in result).
  Fixture f;
  // Registration pass over a slightly different input (the template).
  Matrix x_reg = f.x;
  Rng perturb(13);
  for (const int t : f.mask.masked_tokens) {
    for (int j = 0; j < kHidden; ++j) {
      x_reg.at(t, j) += static_cast<float>(perturb.Normal(0.0, 0.5));
    }
  }
  Matrix k_reg;
  Matrix v_reg;
  const Matrix y_reg = BlockForwardFull(f.weights, x_reg, f.bias, &k_reg, &v_reg);

  // Request pass input: unmasked rows replenished from registration, masked
  // rows carry the request's fresh content.
  Matrix x_in = x_reg;
  for (const int t : f.mask.masked_tokens) {
    for (int j = 0; j < kHidden; ++j) {
      x_in.at(t, j) = f.x.at(t, j);
    }
  }
  const Matrix via_y =
      BlockForwardMaskedY(f.weights, x_in, f.bias, f.mask, y_reg);
  const Matrix via_kv = BlockForwardMaskedKV(f.weights, x_in, f.bias, f.mask,
                                             y_reg, k_reg, v_reg);
  for (size_t i = 0; i < via_y.size(); ++i) {
    EXPECT_NEAR(via_y.data()[i], via_kv.data()[i], 2e-4f);
  }
}

TEST(BlockForwardMaskedYTest, UnmaskedRowsComeFromCache) {
  Fixture f;
  Matrix fake_cache(kTokens, kHidden);
  fake_cache.FillConstant(42.0f);
  const Matrix y =
      BlockForwardMaskedY(f.weights, f.x, f.bias, f.mask, fake_cache);
  for (const int t : f.mask.unmasked_tokens) {
    for (int j = 0; j < kHidden; ++j) {
      EXPECT_EQ(y.at(t, j), 42.0f);
    }
  }
  // Masked rows are computed, not copied.
  bool any_differs = false;
  for (const int t : f.mask.masked_tokens) {
    for (int j = 0; j < kHidden; ++j) {
      any_differs |= y.at(t, j) != 42.0f;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(BlockForwardSparseTest, ShapeAndFiniteness) {
  Fixture f;
  const Matrix xm = GatherRows(f.x, f.mask.masked_tokens);
  const int n = xm.rows();
  Matrix sub_bias(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      sub_bias.at(i, j) =
          f.bias.at(f.mask.masked_tokens[i], f.mask.masked_tokens[j]);
    }
  }
  const Matrix y = BlockForwardSparse(f.weights, xm, sub_bias);
  ASSERT_EQ(y.rows(), n);
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST(AttentionMatrixTest, RowsAreDistributions) {
  Fixture f;
  const Matrix attn = AttentionMatrix(f.weights, f.x, f.bias);
  ASSERT_EQ(attn.rows(), kTokens);
  ASSERT_EQ(attn.cols(), kTokens);
  for (int i = 0; i < attn.rows(); ++i) {
    float sum = 0.0f;
    for (int j = 0; j < attn.cols(); ++j) {
      EXPECT_GE(attn.at(i, j), 0.0f);
      sum += attn.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST(AttentionMatrixTest, DistanceBiasInducesLocality) {
  // With the distance bias, average attention to near tokens exceeds
  // attention to far tokens — the property behind Fig. 6-Right.
  Fixture f;
  const Matrix attn = AttentionMatrix(f.weights, f.x, f.bias);
  double near = 0.0;
  double far = 0.0;
  int near_n = 0;
  int far_n = 0;
  for (int i = 0; i < kTokens; ++i) {
    const int ri = i / kGrid;
    const int ci = i % kGrid;
    for (int j = 0; j < kTokens; ++j) {
      const int rj = j / kGrid;
      const int cj = j % kGrid;
      const double dist = std::hypot(ri - rj, ci - cj);
      if (dist <= 1.5) {
        near += attn.at(i, j);
        ++near_n;
      } else if (dist >= 4.0) {
        far += attn.at(i, j);
        ++far_n;
      }
    }
  }
  EXPECT_GT(near / near_n, 2.0 * far / far_n);
}

}  // namespace
}  // namespace flashps::model
