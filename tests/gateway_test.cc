#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "src/gateway/admission.h"
#include "src/gateway/gateway.h"
#include "src/gateway/metrics.h"

namespace flashps::gateway {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, CountersPartitionSubmissions) {
  MetricsRegistry metrics(2);
  for (int i = 0; i < 10; ++i) {
    metrics.RecordSubmitted();
  }
  metrics.RecordAccepted(0);
  metrics.RecordAccepted(1);
  metrics.RecordAccepted(1);
  metrics.RecordRejectedSlo();
  metrics.RecordRejectedSlo();
  metrics.RecordShedOverload();
  metrics.RecordRejectedShutdown();

  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.submitted, 10u);
  EXPECT_EQ(snap.accepted, 3u);
  EXPECT_EQ(snap.rejected_slo, 2u);
  EXPECT_EQ(snap.shed_overload, 1u);
  EXPECT_EQ(snap.rejected_shutdown, 1u);
  ASSERT_EQ(snap.worker_dispatched.size(), 2u);
  EXPECT_EQ(snap.worker_dispatched[0], 1u);
  EXPECT_EQ(snap.worker_dispatched[1], 2u);
}

TEST(MetricsRegistryTest, PercentilesDeterministicUnderKnownInputs) {
  MetricsRegistry metrics(1);
  StatAccumulator reference;
  // 1..100 ms end-to-end, queueing = i/10, denoise = i/2, post = i/4.
  for (int i = 1; i <= 100; ++i) {
    const double v = static_cast<double>(i);
    metrics.RecordCompleted(0, v / 10.0, v / 2.0, v / 4.0, v,
                            /*had_deadline=*/true, /*met_deadline=*/i <= 90);
    reference.Add(v);
  }
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.end_to_end.count, 100u);
  EXPECT_DOUBLE_EQ(snap.end_to_end.mean_ms, reference.Mean());
  EXPECT_DOUBLE_EQ(snap.end_to_end.p50_ms, reference.Percentile(0.50));
  EXPECT_DOUBLE_EQ(snap.end_to_end.p95_ms, reference.Percentile(0.95));
  EXPECT_DOUBLE_EQ(snap.end_to_end.p99_ms, reference.Percentile(0.99));
  EXPECT_DOUBLE_EQ(snap.end_to_end.max_ms, 100.0);
  EXPECT_DOUBLE_EQ(snap.queueing.max_ms, 10.0);
  EXPECT_DOUBLE_EQ(snap.denoise.max_ms, 50.0);
  EXPECT_DOUBLE_EQ(snap.post.max_ms, 25.0);
  EXPECT_EQ(snap.slo_met, 90u);
  EXPECT_EQ(snap.slo_missed, 10u);
  EXPECT_DOUBLE_EQ(snap.SloAttainment(), 0.9);
  EXPECT_DOUBLE_EQ(snap.worker_busy_ms[0], reference.sum() / 2.0);
}

TEST(MetricsRegistryTest, AttainmentIsOneWithoutDeadlines) {
  MetricsRegistry metrics(1);
  metrics.RecordCompleted(0, 1.0, 2.0, 3.0, 6.0, /*had_deadline=*/false,
                          /*met_deadline=*/false);
  EXPECT_DOUBLE_EQ(metrics.Snapshot().SloAttainment(), 1.0);
}

TEST(MetricsRegistryTest, JsonExportCarriesEveryField) {
  MetricsRegistry metrics(2);
  metrics.RecordSubmitted();
  metrics.RecordAccepted(1);
  metrics.RecordCompleted(1, 1.0, 2.0, 3.0, 6.0, true, true);
  const std::string json = metrics.ToJson();
  for (const char* key :
       {"\"submitted\":1", "\"accepted\":1", "\"rejected_slo\":0",
        "\"shed_overload\":0", "\"rejected_shutdown\":0", "\"completed\":1",
        "\"slo_attainment\":1", "\"queueing\"", "\"denoise\"", "\"post\"",
        "\"end_to_end\"", "\"worker_dispatched\":[0,1]",
        "\"worker_completed\":[0,1]", "\"worker_busy_ms\":[0,2]"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing: " << json;
  }
}

// ---------------------------------------------------------------------------
// AdmissionController

class AdmissionTest : public ::testing::Test {
 protected:
  static sched::LatencyModel Model() {
    return sched::LatencyModel::FitOffline(
        model::TimingConfig::Get(model::ModelKind::kSdxl),
        model::ComputeMode::kMaskAwareY);
  }
  static trace::Request Probe(double ratio, int steps) {
    trace::Request r;
    r.mask_ratio = ratio;
    r.denoise_steps = steps;
    return r;
  }
  static sched::WorkerStatus Idle(int id) {
    sched::WorkerStatus s;
    s.worker_id = id;
    s.max_batch = 4;
    return s;
  }
};

TEST_F(AdmissionTest, GenerousBudgetAdmits) {
  AdmissionController admission(Model(), {.wall_seconds_per_model_second = 1.0});
  const auto verdict =
      admission.Evaluate(Probe(0.2, 50), {Idle(0), Idle(1)}, 1e9);
  EXPECT_EQ(verdict.decision, AdmissionController::Decision::kAdmit);
  EXPECT_GT(verdict.estimated_wall_s, 0.0);
}

TEST_F(AdmissionTest, InfeasibleBudgetRejectsWithDistinctStatus) {
  AdmissionController admission(Model(), {.wall_seconds_per_model_second = 1.0});
  const auto verdict =
      admission.Evaluate(Probe(0.2, 50), {Idle(0), Idle(1)}, 1e-9);
  EXPECT_EQ(verdict.decision, AdmissionController::Decision::kRejectSlo);
}

TEST_F(AdmissionTest, PicksBestWorkerForTheEstimate) {
  AdmissionController admission(Model(), {.wall_seconds_per_model_second = 1.0});
  sched::WorkerStatus loaded = Idle(0);
  loaded.running_ratios = {0.9, 0.9, 0.9};
  loaded.remaining_steps = 150;
  const auto both =
      admission.Evaluate(Probe(0.2, 50), {loaded, Idle(1)}, 1e9);
  const auto loaded_only = admission.Evaluate(Probe(0.2, 50), {loaded}, 1e9);
  // The idle worker's drain estimate must be the one admission uses.
  EXPECT_LT(both.estimated_wall_s, loaded_only.estimated_wall_s);
}

TEST_F(AdmissionTest, WallScaleScalesTheEstimate) {
  AdmissionController admission(Model(), {.wall_seconds_per_model_second = 1.0});
  AdmissionController scaled(Model(), {.wall_seconds_per_model_second = 0.5});
  const auto base = admission.Evaluate(Probe(0.3, 50), {Idle(0)}, std::nullopt);
  const auto half = scaled.Evaluate(Probe(0.3, 50), {Idle(0)}, std::nullopt);
  EXPECT_NEAR(half.estimated_wall_s, 0.5 * base.estimated_wall_s, 1e-12);
}

TEST_F(AdmissionTest, QueueDepthCapShedsDeadlinelessRequests) {
  AdmissionController admission(Model(), {.wall_seconds_per_model_second = 1.0,
                                          .max_queue_depth = 2});
  sched::WorkerStatus busy = Idle(0);
  busy.waiting_ratios = {0.1, 0.2};
  const auto verdict = admission.Evaluate(Probe(0.2, 50), {busy}, std::nullopt);
  EXPECT_EQ(verdict.decision, AdmissionController::Decision::kShedOverload);
  // With a feasible deadline the same request is admitted (the drain
  // estimate already accounts for the queue).
  const auto with_deadline = admission.Evaluate(Probe(0.2, 50), {busy}, 1e9);
  EXPECT_EQ(with_deadline.decision, AdmissionController::Decision::kAdmit);
}

// ---------------------------------------------------------------------------
// Gateway

runtime::OnlineRequest MakeRequest(const model::NumericsConfig& numerics,
                                   int i, Rng& rng) {
  runtime::OnlineRequest r;
  r.template_id = i % 3;
  r.mask = trace::GenerateBlobMask(numerics.grid_h, numerics.grid_w,
                                   0.1 + 0.3 * rng.NextDouble(), rng);
  r.prompt_seed = 500 + i;
  return r;
}

GatewayOptions SmallGateway(sched::RoutePolicy policy) {
  GatewayOptions options;
  options.num_workers = 2;
  options.worker.numerics = model::NumericsConfig::ForTests();
  options.worker.numerics.num_steps = 4;
  options.worker.max_batch = 2;
  options.worker.cpu_lanes = 1;
  options.policy = policy;
  return options;
}

TEST(GatewayTest, ServesBurstAcrossWorkersAndResolvesEveryFuture) {
  Gateway gateway(SmallGateway(sched::RoutePolicy::kMaskAware));
  Rng rng(11);
  std::vector<SubmitResult> results;
  for (int i = 0; i < 8; ++i) {
    results.push_back(
        gateway.Submit(MakeRequest(gateway.options().worker.numerics, i, rng)));
  }
  std::set<uint64_t> seen;
  for (auto& r : results) {
    ASSERT_TRUE(r.accepted());
    ASSERT_GE(r.worker_id, 0);
    ASSERT_LT(r.worker_id, gateway.num_workers());
    const runtime::OnlineResponse resp = r.future.get();
    EXPECT_GE(resp.total_ms(), 0.0);
    seen.insert(resp.id + (static_cast<uint64_t>(r.worker_id) << 32));
  }
  EXPECT_EQ(seen.size(), 8u);
  gateway.Drain();
  const MetricsSnapshot snap = gateway.Metrics();
  EXPECT_EQ(snap.submitted, 8u);
  EXPECT_EQ(snap.accepted, 8u);
  EXPECT_EQ(snap.completed, 8u);
  EXPECT_EQ(snap.worker_dispatched[0] + snap.worker_dispatched[1], 8u);
  EXPECT_EQ(snap.end_to_end.count, 8u);
  gateway.Stop();
}

TEST(GatewayTest, EveryRoutePolicyDispatchesOnLiveWorkers) {
  for (const auto policy :
       {sched::RoutePolicy::kRoundRobin, sched::RoutePolicy::kFirstFit,
        sched::RoutePolicy::kRequestCount, sched::RoutePolicy::kTokenCount,
        sched::RoutePolicy::kMaskAware}) {
    Gateway gateway(SmallGateway(policy));
    Rng rng(23);
    std::vector<SubmitResult> results;
    for (int i = 0; i < 4; ++i) {
      results.push_back(gateway.Submit(
          MakeRequest(gateway.options().worker.numerics, i, rng)));
    }
    for (auto& r : results) {
      ASSERT_TRUE(r.accepted()) << sched::ToString(policy);
      r.future.get();
    }
    gateway.Stop();
    EXPECT_EQ(gateway.Metrics().completed, 4u) << sched::ToString(policy);
  }
}

TEST(GatewayTest, RoundRobinAlternatesWorkers) {
  Gateway gateway(SmallGateway(sched::RoutePolicy::kRoundRobin));
  Rng rng(31);
  std::vector<int> workers;
  for (int i = 0; i < 4; ++i) {
    auto r =
        gateway.Submit(MakeRequest(gateway.options().worker.numerics, i, rng));
    ASSERT_TRUE(r.accepted());
    workers.push_back(r.worker_id);
    r.future.get();
  }
  EXPECT_EQ(workers, (std::vector<int>{0, 1, 0, 1}));
  gateway.Stop();
}

TEST(GatewayTest, InfeasibleSloIsRejectedNeverSilentlyDropped) {
  GatewayOptions options = SmallGateway(sched::RoutePolicy::kMaskAware);
  options.slo = Duration::Micros(1);  // No request can finish in 1 us.
  Gateway gateway(options);
  Rng rng(5);
  for (int i = 0; i < 3; ++i) {
    const SubmitResult r =
        gateway.Submit(MakeRequest(options.worker.numerics, i, rng));
    EXPECT_EQ(r.status, SubmitStatus::kRejectedSlo);
    EXPECT_GT(r.estimated_wall_s, 0.0);
    EXPECT_FALSE(r.future.valid());
  }
  gateway.Stop();
  const MetricsSnapshot snap = gateway.Metrics();
  EXPECT_EQ(snap.submitted, 3u);
  EXPECT_EQ(snap.rejected_slo, 3u);
  EXPECT_EQ(snap.accepted, 0u);
  EXPECT_EQ(snap.completed, 0u);
}

TEST(GatewayTest, PerRequestDeadlineOverridesGatewaySlo) {
  GatewayOptions options = SmallGateway(sched::RoutePolicy::kMaskAware);
  options.slo = Duration::Micros(1);
  Gateway gateway(options);
  Rng rng(6);
  runtime::OnlineRequest request =
      MakeRequest(options.worker.numerics, 0, rng);
  request.deadline = std::chrono::steady_clock::now() +
                     std::chrono::seconds(30);
  SubmitResult r = gateway.Submit(std::move(request));
  ASSERT_TRUE(r.accepted());
  const runtime::OnlineResponse resp = r.future.get();
  EXPECT_TRUE(resp.has_deadline());
  EXPECT_TRUE(resp.met_deadline());
  gateway.Stop();
  EXPECT_EQ(gateway.Metrics().slo_met, 1u);
}

TEST(GatewayTest, RelativeSloOverridesGatewayDefault) {
  // A request-carried relative budget takes precedence over the (here
  // impossible) gateway-wide SLO and is stamped as a deadline at dispatch.
  GatewayOptions options = SmallGateway(sched::RoutePolicy::kMaskAware);
  options.slo = Duration::Micros(1);
  Gateway gateway(options);
  Rng rng(6);
  runtime::OnlineRequest request =
      MakeRequest(options.worker.numerics, 0, rng);
  request.slo = Duration::Seconds(30.0);
  SubmitResult r = gateway.Submit(std::move(request));
  ASSERT_TRUE(r.accepted());
  const runtime::OnlineResponse resp = r.future.get();
  EXPECT_TRUE(resp.has_deadline());
  EXPECT_TRUE(resp.met_deadline());
  gateway.Stop();
  EXPECT_EQ(gateway.Metrics().slo_met, 1u);
}

TEST(GatewayTest, ProfilesHostModelAndOverheadAtStartup) {
  // Startup profiling must produce a usable regression (positive slope,
  // near-linear fit on this host's timed steps) and a positive per-request
  // pre/post overhead estimate.
  GatewayOptions options = SmallGateway(sched::RoutePolicy::kMaskAware);
  Gateway gateway(options);
  EXPECT_GT(gateway.latency_model().compute_fit().slope, 0.0);
  EXPECT_GT(gateway.latency_model().compute_fit().r2, 0.5);
  EXPECT_GT(gateway.per_request_overhead_s(), 0.0);
  gateway.Stop();
}

TEST(GatewayTest, QueueDepthCapSheds) {
  GatewayOptions options = SmallGateway(sched::RoutePolicy::kRoundRobin);
  options.max_queue_depth = 1;
  options.worker.cpu_lanes = 1;
  Gateway gateway(options);
  Rng rng(7);
  // Burst fast enough that waiting depth exceeds the cap: outcomes must be
  // either accepted or shed, and the counters must account for all of them.
  std::vector<SubmitResult> results;
  for (int i = 0; i < 12; ++i) {
    results.push_back(
        gateway.Submit(MakeRequest(options.worker.numerics, i, rng)));
  }
  uint64_t accepted = 0;
  uint64_t shed = 0;
  for (auto& r : results) {
    if (r.accepted()) {
      ++accepted;
      r.future.get();
    } else {
      EXPECT_EQ(r.status, SubmitStatus::kShedOverload);
      ++shed;
    }
  }
  gateway.Stop();
  const MetricsSnapshot snap = gateway.Metrics();
  EXPECT_EQ(snap.submitted, 12u);
  EXPECT_EQ(snap.accepted, accepted);
  EXPECT_EQ(snap.shed_overload, shed);
  EXPECT_EQ(snap.completed, accepted);
}

TEST(GatewayTest, OpenLoopReplayDrainCompletesEverything) {
  GatewayOptions options = SmallGateway(sched::RoutePolicy::kMaskAware);
  Gateway gateway(options);

  trace::WorkloadSpec spec;
  spec.num_requests = 10;
  spec.rps = 200.0;  // 10 arrivals over ~50 ms.
  spec.seed = 99;
  const std::vector<trace::Request> requests = trace::GenerateWorkload(spec);
  gateway.ReplayTrace(requests, /*mask_seed=*/17);
  gateway.Drain();

  const MetricsSnapshot snap = gateway.Metrics();
  EXPECT_EQ(snap.submitted, 10u);
  EXPECT_EQ(snap.accepted, 10u);
  EXPECT_EQ(snap.completed, 10u);  // Every accepted future resolved.
  EXPECT_EQ(snap.end_to_end.count, 10u);
  gateway.Stop();
}

TEST(GatewayTest, SubmitAfterStopReportsShutdownStatus) {
  Gateway gateway(SmallGateway(sched::RoutePolicy::kRoundRobin));
  gateway.Stop();
  Rng rng(8);
  const SubmitResult r =
      gateway.Submit(MakeRequest(gateway.options().worker.numerics, 0, rng));
  EXPECT_EQ(r.status, SubmitStatus::kRejectedShutdown);
  EXPECT_FALSE(r.future.valid());
  EXPECT_EQ(gateway.Metrics().rejected_shutdown, 1u);
}

TEST(GatewayTest, StopFlushesScheduledArrivalsAsRejected) {
  Gateway gateway(SmallGateway(sched::RoutePolicy::kRoundRobin));
  Rng rng(9);
  // Scheduled far in the future; Stop() must account for them explicitly.
  for (int i = 0; i < 5; ++i) {
    gateway.SubmitAt(MakeRequest(gateway.options().worker.numerics, i, rng),
                     Duration::Seconds(3600));
  }
  gateway.Stop();
  const MetricsSnapshot snap = gateway.Metrics();
  EXPECT_EQ(snap.submitted, 5u);
  EXPECT_EQ(snap.rejected_shutdown, 5u);
  EXPECT_EQ(snap.completed, 0u);
}

TEST(GatewayTest, StopIsIdempotentAndDrainAfterStopReturns) {
  Gateway gateway(SmallGateway(sched::RoutePolicy::kMaskAware));
  gateway.Stop();
  gateway.Stop();
  gateway.Drain();
}

TEST(GatewayTest, MultiThreadedWorkersServeAndStayDeterministic) {
  // Workers exploiting intra-op parallelism (compute_threads > 1) must
  // behave exactly like serial workers: same completions, same images.
  // scripts/check.sh runs this under TSan, racing the ParallelFor pool
  // against the gateway's own threads.
  Matrix images[2];
  const int thread_counts[2] = {1, 2};
  for (int variant = 0; variant < 2; ++variant) {
    GatewayOptions options = SmallGateway(sched::RoutePolicy::kRoundRobin);
    options.worker.compute_threads = thread_counts[variant];
    Gateway gateway(options);
    Rng rng(21);
    runtime::OnlineRequest request =
        MakeRequest(gateway.options().worker.numerics, 1, rng);
    SubmitResult pinned = gateway.Submit(request);
    ASSERT_TRUE(pinned.accepted());
    images[variant] = pinned.future.get().image;
    // A burst on top, to exercise fan-out under batching.
    std::vector<SubmitResult> burst;
    for (int i = 0; i < 4; ++i) {
      burst.push_back(gateway.Submit(
          MakeRequest(gateway.options().worker.numerics, i, rng)));
    }
    for (auto& r : burst) {
      ASSERT_TRUE(r.accepted());
      r.future.get();
    }
    gateway.Drain();
    EXPECT_EQ(gateway.Metrics().completed, 5u);
    gateway.Stop();
  }
  EXPECT_EQ(MeanAbsDiff(images[0], images[1]), 0.0);
}

TEST(GatewayTest, SubmitStatusNamesAreDistinct) {
  std::set<std::string> names;
  for (const auto s :
       {SubmitStatus::kAccepted, SubmitStatus::kRejectedSlo,
        SubmitStatus::kShedOverload, SubmitStatus::kRejectedShutdown}) {
    names.insert(ToString(s));
  }
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace flashps::gateway
