// Equivalence of the blocked/threaded kernels against the retained naive
// reference, across awkward shapes (non-multiples of the register tile,
// prime dims, tall/thin, wide/flat, degenerate 1x1) and thread counts
// 1/2/4 — plus the ParallelFor facility's own contract. scripts/check.sh
// runs this suite under FLASHPS_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "src/common/parallel_for.h"
#include "src/common/rng.h"
#include "src/tensor/matrix.h"
#include "src/tensor/naive.h"

namespace flashps {
namespace {

struct GemmShape {
  int m;
  int k;
  int n;
};

// Non-multiple-of-tile sizes on purpose: the micro-kernel tile is 4x8, so
// exercise 1x1, primes, tall/thin, wide/flat, and the SDXL block shapes the
// serving path actually runs (tokens=256, hidden=64, ff=256).
const std::vector<GemmShape>& Shapes() {
  static const std::vector<GemmShape> shapes = {
      {1, 1, 1},    {1, 7, 1},    {2, 3, 5},      {17, 13, 7},
      {31, 37, 41}, {257, 8, 3},  {3, 8, 257},    {5, 9, 12},
      {4, 8, 8},    {256, 64, 64}, {256, 64, 256}, {256, 256, 64},
  };
  return shapes;
}

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillNormal(rng, 1.0f);
  return m;
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.bytes()) == 0);
}

void ExpectNear(const Matrix& got, const Matrix& want, double tol,
                const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got.data()[i], want.data()[i], tol)
        << what << " at flat index " << i;
  }
}

// The blocked kernels accumulate in the same k-order as the reference, so
// the only permitted divergence is FMA-contraction rounding.
double GemmTolerance(int k) { return 1e-4 * std::sqrt(static_cast<double>(k)); }

TEST(KernelEquivalenceTest, MatMulMatchesNaiveAcrossShapesAndThreads) {
  for (const auto& s : Shapes()) {
    const Matrix a = RandomMatrix(s.m, s.k, 11 + s.m);
    const Matrix b = RandomMatrix(s.k, s.n, 23 + s.n);
    const Matrix want = naive::MatMul(a, b);
    for (const int threads : {1, 2, 4}) {
      ComputeThreadsScope scope(threads);
      ExpectNear(MatMul(a, b), want, GemmTolerance(s.k), "MatMul");
    }
  }
}

TEST(KernelEquivalenceTest, MatMulTransposedMatchesNaiveAcrossShapesAndThreads) {
  for (const auto& s : Shapes()) {
    const Matrix a = RandomMatrix(s.m, s.k, 31 + s.m);
    const Matrix b = RandomMatrix(s.n, s.k, 43 + s.n);
    const Matrix want = naive::MatMulTransposed(a, b);
    for (const int threads : {1, 2, 4}) {
      ComputeThreadsScope scope(threads);
      ExpectNear(MatMulTransposed(a, b), want, GemmTolerance(s.k),
                 "MatMulTransposed");
    }
  }
}

TEST(KernelEquivalenceTest, GemmIsBitwiseIdenticalAcrossThreadCounts) {
  // Chunk boundaries are grain-aligned with grain a multiple of the row
  // tile, so the tile decomposition — and the result bits — cannot move
  // with the thread count.
  for (const auto& s : Shapes()) {
    const Matrix a = RandomMatrix(s.m, s.k, 57 + s.m);
    const Matrix b = RandomMatrix(s.k, s.n, 71 + s.n);
    const Matrix bt = RandomMatrix(s.n, s.k, 73 + s.n);
    Matrix base;
    Matrix base_t;
    {
      ComputeThreadsScope scope(1);
      base = MatMul(a, b);
      base_t = MatMulTransposed(a, bt);
    }
    for (const int threads : {2, 4}) {
      ComputeThreadsScope scope(threads);
      EXPECT_TRUE(BitwiseEqual(MatMul(a, b), base))
          << "m=" << s.m << " k=" << s.k << " n=" << s.n
          << " threads=" << threads;
      EXPECT_TRUE(BitwiseEqual(MatMulTransposed(a, bt), base_t))
          << "m=" << s.m << " k=" << s.k << " n=" << s.n
          << " threads=" << threads;
    }
  }
}

TEST(KernelEquivalenceTest, RowwiseKernelsMatchNaiveAcrossThreads) {
  for (const int rows : {1, 5, 64, 257}) {
    for (const int cols : {1, 3, 48, 129}) {
      const Matrix x = RandomMatrix(rows, cols, 100 + rows + cols);
      std::vector<float> gamma(cols);
      std::vector<float> beta(cols);
      Rng rng(7);
      for (int j = 0; j < cols; ++j) {
        gamma[j] = 1.0f + 0.2f * static_cast<float>(rng.Normal());
        beta[j] = 0.1f * static_cast<float>(rng.Normal());
      }
      Matrix soft_want = x;
      naive::SoftmaxRows(soft_want);
      const Matrix ln_want = naive::LayerNorm(x, gamma, beta);
      Matrix gelu_want = x;
      naive::GeluInPlace(gelu_want);
      for (const int threads : {1, 2, 4}) {
        ComputeThreadsScope scope(threads);
        Matrix soft = x;
        SoftmaxRows(soft);
        // Row-wise kernels run the reference arithmetic per row; only the
        // row-to-thread assignment changes.
        EXPECT_TRUE(BitwiseEqual(soft, soft_want))
            << "softmax " << rows << "x" << cols << " t=" << threads;
        EXPECT_TRUE(BitwiseEqual(LayerNorm(x, gamma, beta), ln_want))
            << "layernorm " << rows << "x" << cols << " t=" << threads;
        Matrix gelu = x;
        GeluInPlace(gelu);
        EXPECT_TRUE(BitwiseEqual(gelu, gelu_want))
            << "gelu " << rows << "x" << cols << " t=" << threads;
      }
    }
  }
}

TEST(KernelEquivalenceTest, AxpyMatchesScalarLoop) {
  const Matrix x = RandomMatrix(93, 31, 5);
  Matrix want = RandomMatrix(93, 31, 6);
  Matrix got = want;
  for (size_t i = 0; i < want.size(); ++i) {
    want.data()[i] += 0.25f * x.data()[i];
  }
  for (const int threads : {1, 4}) {
    ComputeThreadsScope scope(threads);
    Matrix y = got;
    AxpyInPlace(y, 0.25f, x);
    EXPECT_TRUE(BitwiseEqual(y, want)) << "threads=" << threads;
  }
}

TEST(KernelEquivalenceTest, DegenerateShapesStayEmpty) {
  const Matrix a(0, 5);
  const Matrix b(5, 0);
  EXPECT_EQ(MatMul(a, RandomMatrix(5, 3, 1)).rows(), 0);
  EXPECT_EQ(MatMul(RandomMatrix(3, 5, 1), b).cols(), 0);
  Matrix empty(0, 0);
  SoftmaxRows(empty);  // Must not touch anything.
  GeluInPlace(empty);
  EXPECT_TRUE(empty.empty());
}

TEST(ParallelForTest, CoversRangeExactlyOnceWithAlignedChunks) {
  ComputeThreadsScope scope(4);
  for (const int64_t n : {1, 7, 64, 1000, 1001}) {
    for (const int64_t grain : {1, 4, 7, 64}) {
      std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
      for (auto& h : hits) {
        h.store(0);
      }
      std::atomic<bool> aligned{true};
      ParallelFor(n, grain, [&](int64_t b, int64_t e) {
        if (b % grain != 0 && b != 0) {
          aligned.store(false);
        }
        for (int64_t i = b; i < e; ++i) {
          hits[static_cast<size_t>(i)].fetch_add(1);
        }
      });
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
            << "n=" << n << " grain=" << grain << " i=" << i;
      }
      EXPECT_TRUE(aligned.load()) << "n=" << n << " grain=" << grain;
    }
  }
}

TEST(ParallelForTest, SerialFastPathIsOneInlineCall) {
  ComputeThreadsScope scope(4);
  int calls = 0;
  // n <= grain: single inline invocation on the calling thread.
  ParallelFor(32, 32, [&](int64_t b, int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 32);
  });
  EXPECT_EQ(calls, 1);

  ComputeThreadsScope serial(1);
  calls = 0;
  ParallelFor(1 << 20, 1, [&](int64_t b, int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 1 << 20);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, NestedParallelismRunsSerial) {
  ComputeThreadsScope scope(4);
  std::atomic<int> outer_chunks{0};
  std::atomic<int> serial_budgets{0};
  std::atomic<int> inner_calls{0};
  ParallelFor(16, 1, [&](int64_t, int64_t) {
    outer_chunks.fetch_add(1);
    // Inside a parallel region the effective budget collapses to 1...
    if (EffectiveComputeThreads() == 1) {
      serial_budgets.fetch_add(1);
    }
    // ...so the nested call runs as one inline chunk covering the range.
    ParallelFor(1000, 1, [&](int64_t b, int64_t e) {
      if (b == 0 && e == 1000) {
        inner_calls.fetch_add(1);
      }
    });
  });
  EXPECT_GE(outer_chunks.load(), 1);
  EXPECT_EQ(serial_budgets.load(), outer_chunks.load());
  EXPECT_EQ(inner_calls.load(), outer_chunks.load());
}

TEST(ParallelForTest, ScopesNestAndRestore) {
  SetGlobalComputeThreads(1);
  EXPECT_EQ(EffectiveComputeThreads(), 1);
  {
    ComputeThreadsScope outer(3);
    EXPECT_EQ(EffectiveComputeThreads(), 3);
    {
      ComputeThreadsScope inner(2);
      EXPECT_EQ(EffectiveComputeThreads(), 2);
    }
    EXPECT_EQ(EffectiveComputeThreads(), 3);
  }
  EXPECT_EQ(EffectiveComputeThreads(), 1);
  // Requests clamp to [1, kMaxComputeThreads].
  {
    ComputeThreadsScope wild(1 << 20);
    EXPECT_EQ(EffectiveComputeThreads(), kMaxComputeThreads);
  }
  {
    ComputeThreadsScope zero(0);
    EXPECT_EQ(EffectiveComputeThreads(), 1);
  }
  SetGlobalComputeThreads(-5);
  EXPECT_EQ(GlobalComputeThreads(), 1);
  SetGlobalComputeThreads(1);
}

TEST(ParallelForTest, ConcurrentCallersShareThePool) {
  // Two threads issuing ParallelFor at once (the gateway runs one denoise
  // thread per worker): joins must not cross-talk.
  std::atomic<int64_t> total{0};
  auto work = [&] {
    ComputeThreadsScope scope(4);
    for (int rep = 0; rep < 50; ++rep) {
      ParallelFor(1024, 16, [&](int64_t b, int64_t e) {
        total.fetch_add(e - b);
      });
    }
  };
  std::thread t1(work);
  std::thread t2(work);
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 2 * 50 * 1024);
}

}  // namespace
}  // namespace flashps
