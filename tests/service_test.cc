#include <gtest/gtest.h>

#include <set>

#include "src/quality/metrics.h"
#include "src/serving/service.h"

namespace flashps::serving {
namespace {

ServiceConfig SmallServiceConfig(bool mask_aware = true) {
  ServiceConfig config;
  config.model = model::ModelKind::kSdxl;
  config.num_workers = 2;
  config.numerics = model::NumericsConfig::ForTests();
  config.mask_aware = mask_aware;
  return config;
}

std::vector<EditRequest> MakeSession(const model::NumericsConfig& numerics,
                                     int n, uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<EditRequest> session;
  TimePoint t;
  for (int i = 0; i < n; ++i) {
    EditRequest r;
    r.template_id = i % 3;
    r.mask = trace::GenerateBlobMask(numerics.grid_h, numerics.grid_w,
                                     0.1 + 0.3 * rng.NextDouble(), rng);
    r.prompt_seed = 100 + i;
    r.arrival = t;
    session.push_back(std::move(r));
    t = t + Duration::Seconds(rng.Exponential(1.0));
  }
  return session;
}

TEST(ServiceTest, ServesAllRequestsWithImagesAndTimings) {
  const ServiceConfig config = SmallServiceConfig();
  Service service(config);
  const auto session = MakeSession(config.numerics, 6);
  const auto responses = service.Serve(session);
  ASSERT_EQ(responses.size(), session.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].image.rows(), config.numerics.image_h());
    EXPECT_EQ(responses[i].image.cols(), config.numerics.image_w());
    EXPECT_GE(responses[i].timing.completion, responses[i].timing.arrival);
    EXPECT_GE(responses[i].worker_id, 0);
    EXPECT_LT(responses[i].worker_id, config.num_workers);
    EXPECT_EQ(responses[i].timing.request.id, i);
  }
}

TEST(ServiceTest, Deterministic) {
  const ServiceConfig config = SmallServiceConfig();
  const auto session = MakeSession(config.numerics, 5);
  Service a(config);
  Service b(config);
  const auto ra = a.Serve(session);
  const auto rb = b.Serve(session);
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].worker_id, rb[i].worker_id);
    EXPECT_EQ(ra[i].timing.completion.micros(),
              rb[i].timing.completion.micros());
    EXPECT_DOUBLE_EQ(MeanAbsDiff(ra[i].image, rb[i].image), 0.0);
  }
}

TEST(ServiceTest, MaskAwareMatchesReferenceImages) {
  const ServiceConfig config = SmallServiceConfig(true);
  ServiceConfig reference_config = SmallServiceConfig(false);
  Service flash(config);
  Service reference(reference_config);
  const auto session = MakeSession(config.numerics, 4);
  const auto fast = flash.Serve(session);
  const auto exact = reference.Serve(session);
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_GT(quality::Ssim(fast[i].image, exact[i].image), 0.85) << i;
  }
}

TEST(ServiceTest, MaskAwareServesFasterThanReference) {
  const ServiceConfig config = SmallServiceConfig(true);
  ServiceConfig reference_config = SmallServiceConfig(false);
  Service flash(config);
  Service reference(reference_config);
  const auto session = MakeSession(config.numerics, 6);
  const auto fast = flash.Serve(session);
  const auto exact = reference.Serve(session);
  double fast_total = 0.0;
  double exact_total = 0.0;
  for (size_t i = 0; i < fast.size(); ++i) {
    fast_total += fast[i].timing.total().seconds();
    exact_total += exact[i].timing.total().seconds();
  }
  EXPECT_LT(fast_total, exact_total);
}

TEST(ServiceTest, SpreadsLoadAcrossWorkers) {
  ServiceConfig config = SmallServiceConfig();
  config.num_workers = 3;
  Service service(config);
  // Simultaneous burst: must not all land on one worker.
  std::vector<EditRequest> burst = MakeSession(config.numerics, 9);
  for (auto& r : burst) {
    r.arrival = TimePoint();
  }
  const auto responses = service.Serve(burst);
  std::set<int> used;
  for (const auto& r : responses) {
    used.insert(r.worker_id);
  }
  EXPECT_GT(used.size(), 1u);
}

}  // namespace
}  // namespace flashps::serving
