// Parameterized property-style sweeps over the core invariants.
#include <gtest/gtest.h>

#include <tuple>

#include "src/common/rng.h"
#include "src/model/flops.h"
#include "src/model/timing.h"
#include "src/pipeline/pipeline.h"
#include "src/serving/worker.h"
#include "src/trace/workload.h"

namespace flashps {
namespace {

// ---------------------------------------------------------------------------
// Table 1 identities across the (L, H, m) space.
// ---------------------------------------------------------------------------

class FlopsProperty
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(FlopsProperty, Table1Identities) {
  const auto [tokens, hidden, m] = GetParam();
  const double l = tokens;
  const double h = hidden;
  // KV caching accelerates everything by exactly 1/m.
  EXPECT_NEAR(model::FlopsKvCacheBlock(l, h, m),
              m * model::FlopsFullBlock(l, h),
              1e-6 * model::FlopsFullBlock(l, h));
  // Ordering: kv <= sparse <= y <= full for m <= 1 (sparse adds nothing over
  // kv except a smaller attention term).
  EXPECT_LE(model::FlopsSparseBlock(l, h, m), model::FlopsKvCacheBlock(l, h, m));
  EXPECT_LE(model::FlopsKvCacheBlock(l, h, m), model::FlopsYCacheBlock(l, h, m));
  EXPECT_LE(model::FlopsYCacheBlock(l, h, m), model::FlopsFullBlock(l, h));
  // Cache shape (B, (1-m)L, H): bytes = (1-m)*L*H*2, within rounding.
  const uint64_t bytes = model::YCacheLoadBytes(tokens, hidden, m, 2);
  EXPECT_NEAR(static_cast<double>(bytes), (1.0 - m) * l * h * 2.0, h * 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlopsProperty,
    ::testing::Combine(::testing::Values(256, 1024, 4096),
                       ::testing::Values(320, 1280),
                       ::testing::Values(0.02, 0.11, 0.35, 0.8, 1.0)));

// ---------------------------------------------------------------------------
// Pipeline DP invariants across random instances of varying size.
// ---------------------------------------------------------------------------

class PipelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(PipelineProperty, DpDominatesAllSingleStrategies) {
  const int n = GetParam();
  Rng rng(1000 + n);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Duration> cw;
    std::vector<Duration> cwo;
    std::vector<Duration> load;
    for (int i = 0; i < n; ++i) {
      const int w = 1 + static_cast<int>(rng.NextBelow(10));
      cw.push_back(Duration::Millis(w));
      cwo.push_back(Duration::Millis(w + static_cast<int>(rng.NextBelow(20))));
      load.push_back(Duration::Millis(static_cast<int>(rng.NextBelow(25))));
    }
    const auto plan = pipeline::PlanBubbleFree(cw, cwo, load);
    const std::vector<bool> all(n, true);
    const std::vector<bool> none(n, false);
    EXPECT_LE(plan.latency, pipeline::ExecutePlan(cw, cwo, load, all).total);
    EXPECT_LE(plan.latency, pipeline::ExecutePlan(cw, cwo, load, none).total);
    // The ideal (free loads) lower-bounds every plan; naive upper-bounds the
    // all-cached execution.
    EXPECT_GE(plan.latency, pipeline::IdealLatency(cw) - Duration::Micros(1));
    EXPECT_GE(pipeline::NaiveSequentialLatency(cw, load),
              pipeline::StrawmanPipelineLatency(cw, load));
  }
}

TEST_P(PipelineProperty, CheaperLoadsNeverHurt) {
  const int n = GetParam();
  Rng rng(2000 + n);
  std::vector<Duration> cw;
  std::vector<Duration> cwo;
  std::vector<Duration> load;
  for (int i = 0; i < n; ++i) {
    const int w = 1 + static_cast<int>(rng.NextBelow(10));
    cw.push_back(Duration::Millis(w));
    cwo.push_back(Duration::Millis(w + 1 + static_cast<int>(rng.NextBelow(20))));
    load.push_back(Duration::Millis(1 + static_cast<int>(rng.NextBelow(25))));
  }
  const auto base = pipeline::PlanBubbleFree(cw, cwo, load);
  std::vector<Duration> cheaper = load;
  for (auto& l : cheaper) {
    l = l / 2;
  }
  const auto improved = pipeline::PlanBubbleFree(cw, cwo, cheaper);
  EXPECT_LE(improved.latency, base.latency);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PipelineProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Serving-engine conservation across policies and modes.
// ---------------------------------------------------------------------------

struct EngineCase {
  serving::SystemKind system;
  serving::BatchPolicy batching;
};

class WorkerConservation : public ::testing::TestWithParam<EngineCase> {};

TEST_P(WorkerConservation, EveryRequestCompletesExactlyOnceInOrderlyTime) {
  const EngineCase param = GetParam();
  serving::EngineConfig config =
      serving::EngineConfig::ForSystem(param.system, model::ModelKind::kSdxl);
  config.batching = param.batching;
  config.model_config.denoise_steps = 8;
  serving::Worker worker(0, config);

  Rng rng(7);
  TimePoint t;
  constexpr int kRequests = 25;
  for (uint64_t i = 0; i < kRequests; ++i) {
    trace::Request r;
    r.id = i;
    r.template_id = static_cast<int>(i % 4);
    r.mask_ratio = 0.02 + 0.7 * rng.NextDouble();
    r.denoise_steps = 8;
    t = t + Duration::Seconds(rng.Exponential(1.5));
    worker.AdvanceTo(t);
    worker.Enqueue(r, t);
  }
  const TimePoint end = worker.Drain();
  const auto done = worker.TakeCompleted();
  ASSERT_EQ(done.size(), static_cast<size_t>(kRequests));
  std::vector<bool> seen(kRequests, false);
  for (const auto& d : done) {
    ASSERT_LT(d.request.id, kRequests);
    EXPECT_FALSE(seen[d.request.id]);
    seen[d.request.id] = true;
    EXPECT_GE(d.exec_start, d.arrival);
    EXPECT_GE(d.denoise_done, d.exec_start);
    EXPECT_GE(d.completion, d.denoise_done);
    EXPECT_LE(d.completion, end);
    EXPECT_GE(d.interruptions, 0);
  }
  EXPECT_TRUE(worker.idle());
}

INSTANTIATE_TEST_SUITE_P(
    PolicyModes, WorkerConservation,
    ::testing::Values(
        EngineCase{serving::SystemKind::kFlashPS,
                   serving::BatchPolicy::kContinuousDisaggregated},
        EngineCase{serving::SystemKind::kFlashPS,
                   serving::BatchPolicy::kContinuousNaive},
        EngineCase{serving::SystemKind::kFlashPS,
                   serving::BatchPolicy::kStatic},
        EngineCase{serving::SystemKind::kDiffusers,
                   serving::BatchPolicy::kStatic},
        EngineCase{serving::SystemKind::kTeaCache,
                   serving::BatchPolicy::kStatic},
        EngineCase{serving::SystemKind::kFISEdit,
                   serving::BatchPolicy::kStatic}));

// ---------------------------------------------------------------------------
// Step-latency monotonicity in ratio and batch for every mode.
// ---------------------------------------------------------------------------

class StepLatencyMonotone
    : public ::testing::TestWithParam<model::ModelKind> {};

TEST_P(StepLatencyMonotone, GrowsWithRatioAndBatch) {
  const auto kind = GetParam();
  const auto engine =
      serving::EngineConfig::ForSystem(serving::SystemKind::kFlashPS, kind);
  const serving::Worker worker(0, engine);
  Duration prev;
  for (double m = 0.1; m <= 0.9; m += 0.1) {
    const Duration step = worker.StepLatency({m});
    EXPECT_GE(step + Duration::Micros(200), prev) << "m=" << m;
    prev = step;
  }
  // Adding a request never reduces step latency.
  std::vector<double> batch;
  prev = Duration::Zero();
  for (int b = 1; b <= 8; ++b) {
    batch.push_back(0.2);
    const Duration step = worker.StepLatency(batch);
    EXPECT_GT(step, prev);
    prev = step;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, StepLatencyMonotone,
                         ::testing::Values(model::ModelKind::kSd21,
                                           model::ModelKind::kSdxl,
                                           model::ModelKind::kFlux));

// ---------------------------------------------------------------------------
// Mask generation properties across grid shapes.
// ---------------------------------------------------------------------------

class MaskGridProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MaskGridProperty, BlobAndRectRespectRatioOnAnyGrid) {
  const auto [h, w] = GetParam();
  Rng rng(h * 100 + w);
  for (const double ratio : {0.1, 0.5, 0.9}) {
    const trace::Mask blob = trace::GenerateBlobMask(h, w, ratio, rng);
    EXPECT_EQ(blob.grid_h, h);
    EXPECT_EQ(blob.grid_w, w);
    EXPECT_EQ(static_cast<int>(blob.masked_tokens.size() +
                               blob.unmasked_tokens.size()),
              h * w);
    EXPECT_NEAR(blob.ratio(), ratio, 2.0 / (h * w) + 0.01);
    const trace::Mask rect = trace::GenerateRectMask(h, w, ratio, rng);
    EXPECT_NEAR(rect.ratio(), ratio, 0.35);  // Rectangles quantize coarsely.
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, MaskGridProperty,
                         ::testing::Combine(::testing::Values(4, 12, 31),
                                            ::testing::Values(5, 12, 17)));

}  // namespace
}  // namespace flashps
