#include <gtest/gtest.h>

#include <filesystem>

#include "src/quality/metrics.h"
#include "src/trace/workload.h"

namespace flashps::trace {
namespace {

TEST(TraceCsvTest, RoundTripPreservesEveryField) {
  WorkloadSpec spec;
  spec.num_requests = 40;
  spec.rps = 2.5;
  const auto original = GenerateWorkload(spec);
  const auto parsed = ParseTraceCsv(SerializeTraceCsv(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].id, original[i].id);
    EXPECT_EQ(parsed[i].arrival.micros(), original[i].arrival.micros());
    EXPECT_EQ(parsed[i].template_id, original[i].template_id);
    EXPECT_DOUBLE_EQ(parsed[i].mask_ratio, original[i].mask_ratio);
    EXPECT_EQ(parsed[i].denoise_steps, original[i].denoise_steps);
  }
}

TEST(TraceCsvTest, EmptyTraceIsHeaderOnly) {
  const std::string csv = SerializeTraceCsv({});
  EXPECT_EQ(csv,
            "id,arrival_us,template_id,mask_ratio,denoise_steps,"
            "grid_h,grid_w\n");
  EXPECT_TRUE(ParseTraceCsv(csv).empty());
}

TEST(TraceCsvTest, ResolutionColumnsRoundTrip) {
  WorkloadSpec spec;
  spec.num_requests = 60;
  spec.rps = 2.0;
  spec.resolutions = {{48, 48, 0.5}, {96, 96, 0.5}};
  const auto original = GenerateWorkload(spec);
  const auto parsed = ParseTraceCsv(SerializeTraceCsv(original));
  ASSERT_EQ(parsed.size(), original.size());
  bool any_resolution = false;
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].grid_h, original[i].grid_h);
    EXPECT_EQ(parsed[i].grid_w, original[i].grid_w);
    any_resolution |= parsed[i].has_resolution();
  }
  EXPECT_TRUE(any_resolution);
}

TEST(TraceCsvTest, LegacyFiveColumnRowsParseAsNativeResolution) {
  const std::string legacy =
      "id,arrival_us,template_id,mask_ratio,denoise_steps\n"
      "0,1000,3,0.25,50\n"
      "1,2500,7,0.4,50\n";
  const auto parsed = ParseTraceCsv(legacy);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].template_id, 3);
  EXPECT_DOUBLE_EQ(parsed[1].mask_ratio, 0.4);
  for (const Request& r : parsed) {
    EXPECT_EQ(r.grid_h, 0);
    EXPECT_EQ(r.grid_w, 0);
    EXPECT_FALSE(r.has_resolution());
  }
}

TEST(TraceCsvTest, RejectsMalformedRows) {
  EXPECT_THROW(ParseTraceCsv("header\nnot,a,row\n"), std::runtime_error);
  EXPECT_THROW(ParseTraceCsv("header\n1,2\n"), std::runtime_error);
}

TEST(TraceCsvTest, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("flashps_trace_" + std::to_string(::getpid()) + ".csv");
  WorkloadSpec spec;
  spec.num_requests = 10;
  const auto original = GenerateWorkload(spec);
  WriteTraceFile(path.string(), original);
  const auto parsed = ReadTraceFile(path.string());
  ASSERT_EQ(parsed.size(), original.size());
  EXPECT_DOUBLE_EQ(parsed[7].mask_ratio, original[7].mask_ratio);
  std::filesystem::remove(path);
  EXPECT_THROW(ReadTraceFile(path.string()), std::runtime_error);
}

}  // namespace
}  // namespace flashps::trace
