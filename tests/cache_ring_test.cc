// Cache-ring units: consistent-hash placement (determinism, spread,
// minimal movement on membership change), and the ShardedRemoteStore
// ladder over three loopback cache nodes — k-way replication, read
// repair, per-member circuit breakers, failover down the preference
// list, and the node-by-node "Acquire never fails" invariant.
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/cache/ring/cache_ring.h"
#include "src/cache/ring/sharded_store.h"
#include "src/net/cache_client.h"
#include "src/net/cache_node.h"
#include "src/net/tcp_server.h"

namespace flashps::net {
namespace {

// Pulls `"key":<integer>` out of a flat metrics JSON string.
uint64_t JsonCounter(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    return ~0ull;
  }
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

bool MatricesEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         LatentChecksum(a) == LatentChecksum(b);
}

bool RecordsEqual(const model::ActivationRecord& a,
                  const model::ActivationRecord& b) {
  if (a.steps.size() != b.steps.size()) return false;
  for (size_t s = 0; s < a.steps.size(); ++s) {
    const auto& as = a.steps[s];
    const auto& bs = b.steps[s];
    if (as.y.size() != bs.y.size() || as.k.size() != bs.k.size() ||
        as.v.size() != bs.v.size()) {
      return false;
    }
    for (size_t i = 0; i < as.y.size(); ++i) {
      if (!MatricesEqual(as.y[i], bs.y[i])) return false;
    }
    for (size_t i = 0; i < as.k.size(); ++i) {
      if (!MatricesEqual(as.k[i], bs.k[i])) return false;
    }
    for (size_t i = 0; i < as.v.size(); ++i) {
      if (!MatricesEqual(as.v[i], bs.v[i])) return false;
    }
  }
  return true;
}

std::vector<cache::RingMember> ThreeMembers() {
  return {{"10.0.0.1", 7412}, {"10.0.0.2", 7412}, {"10.0.0.3", 7412}};
}

// --- placement ------------------------------------------------------------

TEST(CacheRingTest, PlacementIsDeterministicAcrossInstancesAndListingOrder) {
  cache::CacheRingOptions a_options;
  a_options.members = ThreeMembers();
  cache::CacheRingOptions b_options;
  // Same membership SET, different listing order: placement must agree —
  // this is what lets every worker process compute replica locations
  // without coordination.
  b_options.members = {a_options.members[2], a_options.members[0],
                       a_options.members[1]};
  const cache::CacheRing a(a_options);
  const cache::CacheRing b(b_options);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  for (int t = 0; t < 200; ++t) {
    const std::vector<int> pa = a.PreferenceList(t);
    const std::vector<int> pb = b.PreferenceList(t);
    ASSERT_EQ(pa.size(), 3u);
    ASSERT_EQ(pb.size(), 3u);
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(a.member(static_cast<size_t>(pa[i])).id(),
                b.member(static_cast<size_t>(pb[i])).id())
          << "template " << t << " position " << i;
    }
  }
}

TEST(CacheRingTest, RemovingAMemberOnlyShiftsItsRangesToSuccessors) {
  cache::CacheRingOptions full_options;
  full_options.members = ThreeMembers();
  const cache::CacheRing full(full_options);

  // Drop the middle member (by id) and compare: the smaller ring's
  // preference list must equal the full ring's list with the removed
  // member filtered out — nobody else's placement moves.
  const std::string removed = full.member(1).id();
  cache::CacheRingOptions small_options;
  for (const cache::RingMember& m : full.members()) {
    if (m.id() != removed) {
      small_options.members.push_back(m);
    }
  }
  const cache::CacheRing small(small_options);
  ASSERT_EQ(small.size(), 2u);

  for (int t = 0; t < 200; ++t) {
    std::vector<std::string> filtered;
    for (int idx : full.PreferenceList(t)) {
      const std::string id = full.member(static_cast<size_t>(idx)).id();
      if (id != removed) {
        filtered.push_back(id);
      }
    }
    std::vector<std::string> shrunk;
    for (int idx : small.PreferenceList(t)) {
      shrunk.push_back(small.member(static_cast<size_t>(idx)).id());
    }
    EXPECT_EQ(filtered, shrunk) << "template " << t;
  }
}

TEST(CacheRingTest, PlacementSpreadsPrimariesAcrossMembers) {
  cache::CacheRingOptions options;
  options.members = ThreeMembers();
  const cache::CacheRing ring(options);
  std::vector<int> primaries(ring.size(), 0);
  constexpr int kTemplates = 600;
  for (int t = 0; t < kTemplates; ++t) {
    ++primaries[static_cast<size_t>(ring.PrimaryFor(t))];
  }
  for (size_t m = 0; m < ring.size(); ++m) {
    // Every member owns a real share of the keyspace (vnodes smooth the
    // arcs); a member owning < 10% would mean the hot head concentrates.
    EXPECT_GT(primaries[m], kTemplates / 10) << ring.member(m).id();
  }
}

TEST(CacheRingTest, ParseRingMembersAcceptsListAndRejectsMalformed) {
  std::string error;
  const std::vector<cache::RingMember> ok =
      cache::ParseRingMembers("127.0.0.1:7412,example.org:7413,7414", &error);
  ASSERT_EQ(ok.size(), 3u) << error;
  EXPECT_EQ(ok[0].id(), "127.0.0.1:7412");
  EXPECT_EQ(ok[1].id(), "example.org:7413");
  EXPECT_EQ(ok[2].id(), "127.0.0.1:7414");  // Bare port = loopback.

  EXPECT_TRUE(cache::ParseRingMembers("", &error).empty());
  EXPECT_TRUE(cache::ParseRingMembers("host:notaport", &error).empty());
  EXPECT_NE(error.find("bad port"), std::string::npos);
  EXPECT_TRUE(cache::ParseRingMembers("host:1,,host:2", &error).empty());
  EXPECT_TRUE(cache::ParseRingMembers(":7412", &error).empty());
  EXPECT_TRUE(cache::ParseRingMembers("host:70000", &error).empty());
}

// --- sharded store over three loopback nodes ------------------------------

class CacheRingStoreTest : public ::testing::Test {
 protected:
  static constexpr int kNodes = 3;

  void SetUp() override {
    for (int i = 0; i < kNodes; ++i) {
      nodes_[i] = std::make_unique<CacheNode>();
      servers_[i] = std::make_unique<TcpServer>(nodes_[i]->Service());
      ASSERT_TRUE(servers_[i]->Start());
    }
    numerics_ = model::NumericsConfig::ForTests();
    numerics_.num_steps = 2;
    model_ = std::make_unique<model::DiffusionModel>(numerics_);
  }

  void TearDown() override {
    for (auto& server : servers_) {
      if (server != nullptr) {
        server->Stop();
      }
    }
  }

  cache::ShardedStoreOptions StoreOptions(int replication = 2) {
    cache::ShardedStoreOptions options;
    for (int i = 0; i < kNodes; ++i) {
      options.nodes.push_back({"127.0.0.1", servers_[i]->port()});
    }
    options.replication = replication;
    options.connect_attempts = 1;
    options.connect_backoff = std::chrono::milliseconds(1);
    return options;
  }

  // The ring sorts members by id; map a ring member index back to the
  // fixture's node/server slot via the port embedded in the id.
  int SlotOf(const cache::CacheRing& ring, int member_index) {
    const uint16_t port = ring.member(static_cast<size_t>(member_index)).port;
    for (int i = 0; i < kNodes; ++i) {
      if (servers_[i] != nullptr && servers_[i]->port() == port) {
        return i;
      }
    }
    return -1;
  }

  CacheKey FirstKey(int template_id) {
    CacheKey key;
    key.template_id = template_id;
    key.step = 0;
    key.block = 0;
    key.kind = kCacheKindY;
    return key;
  }

  std::unique_ptr<CacheNode> nodes_[kNodes];
  std::unique_ptr<TcpServer> servers_[kNodes];
  model::NumericsConfig numerics_;
  std::unique_ptr<model::DiffusionModel> model_;
};

TEST_F(CacheRingStoreTest, MissRegistersLocallyAndReplicatesKWays) {
  cache::ShardedRemoteStore store(StoreOptions(/*replication=*/2));
  constexpr int kTemplate = 3;
  auto record = store.Acquire(*model_, kTemplate, /*record_kv=*/false);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(RecordsEqual(*record, model_->Register(kTemplate, false)));

  const cache::ShardedStoreStats stats = store.Stats();
  EXPECT_EQ(stats.remote_misses, 1u);
  EXPECT_EQ(stats.local_registrations, 1u);
  EXPECT_EQ(stats.puts_ok, 2u);  // k copies.
  EXPECT_EQ(stats.fallbacks, 0u);

  // The two residents are exactly the first two members of the
  // preference list, and only them.
  const std::vector<int> prefs = store.ring().PreferenceList(kTemplate);
  ASSERT_EQ(prefs.size(), 3u);
  EXPECT_TRUE(nodes_[SlotOf(store.ring(), prefs[0])]->Contains(
      FirstKey(kTemplate)));
  EXPECT_TRUE(nodes_[SlotOf(store.ring(), prefs[1])]->Contains(
      FirstKey(kTemplate)));
  EXPECT_FALSE(nodes_[SlotOf(store.ring(), prefs[2])]->Contains(
      FirstKey(kTemplate)));

  // Per-member accounting: the replica set took the puts.
  uint64_t member_puts = 0;
  for (const cache::RingMemberStats& m : stats.members) {
    member_puts += m.puts_ok;
  }
  EXPECT_EQ(member_puts, 2u);
}

TEST_F(CacheRingStoreTest, ReadRepairBackfillsEarlierReplicaOnLaterHit) {
  cache::ShardedStoreOptions options = StoreOptions(/*replication=*/2);
  cache::CacheRingOptions ring_options;
  ring_options.members = options.nodes;
  const cache::CacheRing ring(ring_options);
  constexpr int kTemplate = 5;
  const std::vector<int> prefs = ring.PreferenceList(kTemplate);

  // Seed ONLY replica 1 (preference position 1) — as if the primary
  // restarted and lost its copy.
  const model::ActivationRecord published =
      model_->Register(kTemplate, false);
  {
    const int slot = SlotOf(ring, prefs[1]);
    CacheClient publisher("127.0.0.1", servers_[slot]->port());
    ASSERT_TRUE(publisher.PutRecord(kTemplate, published).transport_ok);
  }

  cache::ShardedRemoteStore store(options);
  auto record = store.Acquire(*model_, kTemplate, false);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(RecordsEqual(*record, published));

  const cache::ShardedStoreStats stats = store.Stats();
  EXPECT_EQ(stats.remote_hits, 1u);
  EXPECT_EQ(stats.read_repairs, 1u);
  EXPECT_EQ(stats.local_registrations, 0u);
  // The primary was healed: it now holds the record.
  EXPECT_TRUE(
      nodes_[SlotOf(ring, prefs[0])]->Contains(FirstKey(kTemplate)));
  // Per-member view: the hit came from replica 1, the repair landed on
  // the primary.
  EXPECT_EQ(stats.members[static_cast<size_t>(prefs[1])].remote_hits, 1u);
  EXPECT_EQ(stats.members[static_cast<size_t>(prefs[0])].read_repairs, 1u);
  EXPECT_EQ(stats.members[static_cast<size_t>(prefs[0])].remote_misses, 1u);
}

TEST_F(CacheRingStoreTest, FailoverWalksPastDeadPrimaryToReplica) {
  cache::ShardedStoreOptions options = StoreOptions(/*replication=*/2);
  cache::CacheRingOptions ring_options;
  ring_options.members = options.nodes;
  const cache::CacheRing ring(ring_options);
  constexpr int kTemplate = 7;
  const std::vector<int> prefs = ring.PreferenceList(kTemplate);

  // Replica 1 holds the record; the primary is dead.
  const model::ActivationRecord published =
      model_->Register(kTemplate, false);
  {
    const int slot = SlotOf(ring, prefs[1]);
    CacheClient publisher("127.0.0.1", servers_[slot]->port());
    ASSERT_TRUE(publisher.PutRecord(kTemplate, published).transport_ok);
  }
  const int dead_slot = SlotOf(ring, prefs[0]);
  servers_[dead_slot]->Stop();

  cache::ShardedRemoteStore store(options);
  auto record = store.Acquire(*model_, kTemplate, false);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(RecordsEqual(*record, published));

  const cache::ShardedStoreStats stats = store.Stats();
  EXPECT_EQ(stats.remote_hits, 1u);
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(
      stats.members[static_cast<size_t>(prefs[0])].transport_failures, 1u);
  EXPECT_EQ(stats.members[static_cast<size_t>(prefs[1])].remote_hits, 1u);
}

TEST_F(CacheRingStoreTest, KilledMemberMidRunNeverFailsAnAcquire) {
  cache::ShardedRemoteStore store(StoreOptions(/*replication=*/2));
  constexpr int kTemplates = 6;
  for (int t = 0; t < kTemplates; ++t) {
    ASSERT_NE(store.Acquire(*model_, t, false), nullptr);
  }
  // One member dies mid-run. Every subsequent Acquire — old templates
  // through a fresh store (empty front) and brand-new ones — must still
  // succeed with bitwise-identical records.
  servers_[1]->Stop();

  cache::ShardedRemoteStore fresh(StoreOptions(/*replication=*/2));
  for (int t = 0; t < kTemplates + 4; ++t) {
    auto record = fresh.Acquire(*model_, t, false);
    ASSERT_NE(record, nullptr) << "template " << t;
    EXPECT_TRUE(RecordsEqual(*record, model_->Register(t, false)))
        << "template " << t;
  }
  const cache::ShardedStoreStats stats = fresh.Stats();
  // Each Acquire is accounted exactly once on the ladder, and none of
  // them failed.
  EXPECT_EQ(stats.front_hits + stats.singleflight_waits + stats.remote_hits +
                stats.remote_misses + stats.fallbacks +
                stats.prefetch_coalesced,
            static_cast<uint64_t>(kTemplates + 4));
  // The dead member is visible in the per-member dump, not averaged away.
  uint64_t dead_failures = 0;
  uint64_t live_hits = 0;
  for (const cache::RingMemberStats& m : stats.members) {
    dead_failures += m.transport_failures;
    live_hits += m.remote_hits;
  }
  EXPECT_GE(dead_failures, 1u);
  EXPECT_GE(live_hits, 1u);
}

TEST_F(CacheRingStoreTest, WholeRingDeadFallsBackLocallyPerMemberCircuits) {
  cache::ShardedStoreOptions options = StoreOptions(/*replication=*/2);
  options.max_consecutive_failures = 1;
  options.degrade_cooldown = std::chrono::hours(1);
  for (auto& server : servers_) {
    server->Stop();
  }
  cache::ShardedRemoteStore store(options);
  auto record = store.Acquire(*model_, 1, false);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(RecordsEqual(*record, model_->Register(1, false)));

  cache::ShardedStoreStats stats = store.Stats();
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.local_registrations, 1u);
  // The walk tried every member once; each tripped its OWN circuit.
  EXPECT_EQ(stats.degrade_trips, 3u);
  for (const cache::RingMemberStats& m : stats.members) {
    EXPECT_EQ(m.transport_failures, 1u) << m.id;
    EXPECT_EQ(m.circuit_trips, 1u) << m.id;
    EXPECT_TRUE(m.circuit_open) << m.id;
  }
  // With every circuit open the next Acquire goes straight to local
  // registration — no further wire attempts, no further failures.
  ASSERT_NE(store.Acquire(*model_, 2, false), nullptr);
  stats = store.Stats();
  EXPECT_EQ(stats.fallbacks, 2u);
  for (const cache::RingMemberStats& m : stats.members) {
    EXPECT_EQ(m.transport_failures, 1u) << m.id;
  }
}

TEST_F(CacheRingStoreTest, OneSickMemberDegradesOnlyItsOwnRanges) {
  cache::ShardedStoreOptions options = StoreOptions(/*replication=*/1);
  options.max_consecutive_failures = 1;
  options.degrade_cooldown = std::chrono::hours(1);
  cache::CacheRingOptions ring_options;
  ring_options.members = options.nodes;
  const cache::CacheRing ring(ring_options);

  // Find a template whose primary is slot 0's member, then kill slot 0.
  int victim_template = -1;
  int victim_member = -1;
  for (int t = 0; t < 64 && victim_template < 0; ++t) {
    const int primary = ring.PrimaryFor(t);
    if (SlotOf(ring, primary) == 0) {
      victim_template = t;
      victim_member = primary;
    }
  }
  ASSERT_GE(victim_template, 0);
  servers_[0]->Stop();

  cache::ShardedRemoteStore store(options);
  // This Acquire fails over past the dead primary (trip) and still
  // completes — served by the successor, not by local fallback.
  auto record = store.Acquire(*model_, victim_template, false);
  ASSERT_NE(record, nullptr);
  cache::ShardedStoreStats stats = store.Stats();
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_EQ(stats.degrade_trips, 1u);
  EXPECT_TRUE(
      stats.members[static_cast<size_t>(victim_member)].circuit_open);

  // Templates whose primaries are healthy members never touch the dead
  // one (its circuit is open; its ranges shifted to successors).
  for (int t = 64; t < 72; ++t) {
    ASSERT_NE(store.Acquire(*model_, t, false), nullptr);
  }
  stats = store.Stats();
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_EQ(
      stats.members[static_cast<size_t>(victim_member)].transport_failures,
      1u);
}

// Polls until `done` holds or ~2 s pass.
template <typename Predicate>
bool WaitFor(Predicate done,
             std::chrono::milliseconds timeout = std::chrono::seconds(2)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST_F(CacheRingStoreTest, PrefetchPipelineComposesOverTheRing) {
  cache::ShardedStoreOptions options = StoreOptions(/*replication=*/2);
  cache::CacheRingOptions ring_options;
  ring_options.members = options.nodes;
  const cache::CacheRing ring(ring_options);
  constexpr int kTemplate = 9;
  // Warm the primary so the prefetch hits remotely.
  {
    const int slot = SlotOf(ring, ring.PrimaryFor(kTemplate));
    CacheClient publisher("127.0.0.1", servers_[slot]->port());
    ASSERT_TRUE(publisher.PutRecord(kTemplate, model_->Register(kTemplate,
                                                                false))
                    .transport_ok);
  }

  options.prefetch_workers = 1;
  cache::ShardedRemoteStore store(options);
  store.Prefetch(*model_, kTemplate, /*record_kv=*/false);
  ASSERT_TRUE(
      WaitFor([&] { return store.Stats().prefetch_remote_hits == 1; }));

  auto record = store.Acquire(*model_, kTemplate, false);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(RecordsEqual(*record, model_->Register(kTemplate, false)));
  const cache::ShardedStoreStats stats = store.Stats();
  EXPECT_EQ(stats.prefetch_issued, 1u);
  EXPECT_EQ(stats.prefetch_coalesced, 1u);
  EXPECT_EQ(stats.remote_hits, 0u);  // Foreground never fetched.
  EXPECT_GT(stats.prefetch_bytes_fetched, 0u);
}

TEST_F(CacheRingStoreTest, ProbeMembersReflectsLiveness) {
  cache::ShardedStoreOptions options = StoreOptions();
  cache::CacheRingOptions ring_options;
  ring_options.members = options.nodes;
  const cache::CacheRing ring(ring_options);
  servers_[2]->Stop();

  cache::ShardedRemoteStore store(options);
  const std::vector<bool> alive =
      store.ProbeMembers(std::chrono::milliseconds(500));
  ASSERT_EQ(alive.size(), 3u);
  for (size_t i = 0; i < alive.size(); ++i) {
    const bool expect_alive = SlotOf(ring, static_cast<int>(i)) != 2;
    EXPECT_EQ(alive[i], expect_alive) << ring.member(i).id();
  }
}

TEST_F(CacheRingStoreTest, MetricsJsonCarriesPerMemberCounters) {
  cache::ShardedRemoteStore store(StoreOptions(/*replication=*/2));
  store.Acquire(*model_, 3, false);  // miss -> register + replicate x2
  store.Acquire(*model_, 3, false);  // front hit
  const std::string json = store.MetricsJson();
  EXPECT_NE(json.find("\"kind\":\"sharded\""), std::string::npos);
  EXPECT_EQ(JsonCounter(json, "nodes"), 3u);
  EXPECT_EQ(JsonCounter(json, "replication"), 2u);
  EXPECT_EQ(JsonCounter(json, "front_hits"), 1u);
  EXPECT_EQ(JsonCounter(json, "remote_misses"), 1u);
  EXPECT_EQ(JsonCounter(json, "puts_ok"), 2u);
  EXPECT_NE(json.find("\"members\":["), std::string::npos);
  for (int i = 0; i < kNodes; ++i) {
    const std::string id =
        "\"id\":\"127.0.0.1:" + std::to_string(servers_[i]->port()) + "\"";
    EXPECT_NE(json.find(id), std::string::npos) << id;
  }
  EXPECT_NE(json.find("\"read_repairs\":"), std::string::npos);
  EXPECT_NE(json.find("\"circuit_open\":false"), std::string::npos);
}

}  // namespace
}  // namespace flashps::net
