#include <gtest/gtest.h>

#include "src/device/device.h"

namespace flashps::device {
namespace {

TEST(DeviceSpecTest, LatencyFormulas) {
  DeviceSpec spec;
  spec.compute_flops = 1e12;
  spec.gather_load_bw = 1e9;
  spec.pcie_bw = 10e9;
  spec.disk_bw = 0.5e9;
  spec.launch_overhead = Duration::Micros(10);

  EXPECT_EQ(spec.ComputeLatency(1e9).micros(), 1000 + 10);
  EXPECT_EQ(spec.GatherLoadLatency(1'000'000).micros(), 1000);
  EXPECT_EQ(spec.PcieLatency(10'000'000).micros(), 1000);
  EXPECT_EQ(spec.DiskLatency(500'000).micros(), 1000);
}

TEST(DeviceSpecTest, PresetsAreOrdered) {
  const DeviceSpec a10 = DeviceSpec::Get(GpuKind::kA10);
  const DeviceSpec h800 = DeviceSpec::Get(GpuKind::kH800);
  EXPECT_GT(h800.compute_flops, a10.compute_flops);
  EXPECT_GE(h800.pcie_bw, a10.pcie_bw);
  EXPECT_EQ(ToString(a10.kind), "A10");
  EXPECT_EQ(ToString(h800.kind), "H800");
}

TEST(DeviceSpecTest, DiskLoadMatchesPaperAnchor) {
  // §4.2: loading a 2.6 GiB SDXL template cache from disk takes ~6.4 s.
  const DeviceSpec spec = DeviceSpec::Get(GpuKind::kH800);
  const uint64_t bytes = static_cast<uint64_t>(2.6 * (1ULL << 30));
  const double seconds = spec.DiskLatency(bytes).seconds();
  EXPECT_NEAR(seconds, 6.4, 0.7);
}

TEST(StreamTimelineTest, FifoOrdering) {
  StreamTimeline stream;
  const auto a = stream.Enqueue(TimePoint(), Duration::Millis(10));
  EXPECT_EQ(a.start.micros(), 0);
  EXPECT_EQ(a.end.millis(), 10.0);
  // Ready earlier than stream-free: starts when the stream frees.
  const auto b = stream.Enqueue(TimePoint(), Duration::Millis(5));
  EXPECT_EQ(b.start.millis(), 10.0);
  EXPECT_EQ(b.end.millis(), 15.0);
  EXPECT_EQ(stream.idle_time().micros(), 0);
  EXPECT_EQ(stream.busy_time().millis(), 15.0);
}

TEST(StreamTimelineTest, IdleAccounting) {
  StreamTimeline stream;
  stream.Enqueue(TimePoint(), Duration::Millis(10));
  // Op not ready until t=25ms: 15ms bubble.
  const auto b =
      stream.Enqueue(TimePoint::FromMicros(25'000), Duration::Millis(5));
  EXPECT_EQ(b.start.millis(), 25.0);
  EXPECT_EQ(stream.idle_time().millis(), 15.0);
}

TEST(StreamTimelineTest, FirstOpDelayIsNotIdle) {
  StreamTimeline stream;
  // The wait before the very first op is counted by callers, not the stream.
  stream.Enqueue(TimePoint::FromMicros(7'000), Duration::Millis(1));
  EXPECT_EQ(stream.idle_time().micros(), 0);
}

TEST(StreamTimelineTest, ResetClearsState) {
  StreamTimeline stream;
  stream.Enqueue(TimePoint(), Duration::Millis(10));
  stream.Reset(TimePoint::FromSeconds(1.0));
  EXPECT_EQ(stream.free_at().seconds(), 1.0);
  EXPECT_EQ(stream.busy_time().micros(), 0);
  EXPECT_EQ(stream.idle_time().micros(), 0);
}

}  // namespace
}  // namespace flashps::device
