#include <gtest/gtest.h>

#include <cmath>

#include "src/model/diffusion_model.h"

namespace flashps::model {
namespace {

class DiffusionModelTest : public ::testing::Test {
 protected:
  DiffusionModelTest()
      : model_(NumericsConfig::ForTests()), mask_rng_(77) {
    mask_ = trace::GenerateBlobMask(model_.config().grid_h,
                                    model_.config().grid_w, 0.2, mask_rng_);
  }

  DiffusionModel model_;
  Rng mask_rng_;
  trace::Mask mask_;
};

TEST_F(DiffusionModelTest, TemplateEncodingDeterministicAndDistinct) {
  const Matrix a = model_.EncodeTemplate(3);
  const Matrix b = model_.EncodeTemplate(3);
  const Matrix c = model_.EncodeTemplate(4);
  ASSERT_EQ(a.rows(), model_.config().tokens());
  EXPECT_DOUBLE_EQ(MeanAbsDiff(a, b), 0.0);
  EXPECT_GT(MeanAbsDiff(a, c), 0.01);
}

TEST_F(DiffusionModelTest, InitEditLatentTouchesOnlyMaskedRows) {
  const Matrix tmpl = model_.EncodeTemplate(1);
  const Matrix latent = model_.InitEditLatent(tmpl, mask_, 55);
  for (const int t : mask_.unmasked_tokens) {
    for (int j = 0; j < model_.config().hidden; ++j) {
      EXPECT_EQ(latent.at(t, j), tmpl.at(t, j));
    }
  }
  double masked_diff = 0.0;
  for (const int t : mask_.masked_tokens) {
    for (int j = 0; j < model_.config().hidden; ++j) {
      masked_diff += std::abs(latent.at(t, j) - tmpl.at(t, j));
    }
  }
  EXPECT_GT(masked_diff, 0.1);
}

TEST_F(DiffusionModelTest, RegistrationShapes) {
  const ActivationRecord record = model_.Register(1);
  ASSERT_EQ(static_cast<int>(record.steps.size()), model_.config().num_steps);
  for (const auto& step : record.steps) {
    ASSERT_EQ(static_cast<int>(step.y.size()), model_.config().num_blocks);
    for (const auto& y : step.y) {
      EXPECT_EQ(y.rows(), model_.config().tokens());
      EXPECT_EQ(y.cols(), model_.config().hidden);
    }
  }
  EXPECT_FALSE(record.has_kv());
  EXPECT_GT(record.TotalBytes(), 0u);

  const ActivationRecord with_kv = model_.Register(1, /*record_kv=*/true);
  EXPECT_TRUE(with_kv.has_kv());
  EXPECT_NEAR(static_cast<double>(with_kv.TotalBytes()),
              3.0 * static_cast<double>(record.TotalBytes()), 1.0);
}

TEST_F(DiffusionModelTest, FullRunDeterministicAndFinite) {
  DiffusionModel::RunOptions options;
  const Matrix img1 = model_.EditImage(1, mask_, 9, options);
  const Matrix img2 = model_.EditImage(1, mask_, 9, options);
  EXPECT_DOUBLE_EQ(MeanAbsDiff(img1, img2), 0.0);
  for (size_t i = 0; i < img1.size(); ++i) {
    EXPECT_TRUE(std::isfinite(img1.data()[i]));
    EXPECT_GE(img1.data()[i], 0.0f);
    EXPECT_LE(img1.data()[i], 1.0f);
  }
}

TEST_F(DiffusionModelTest, DifferentPromptsDifferentMaskedOutput) {
  DiffusionModel::RunOptions options;
  const Matrix a = model_.EditImage(1, mask_, 9, options);
  const Matrix b = model_.EditImage(1, mask_, 10, options);
  EXPECT_GT(MeanAbsDiff(a, b), 1e-4);
}

TEST_F(DiffusionModelTest, MaskAwareYCloseToFullCompute) {
  // The core quality claim (§3.1, Table 2): reusing the registration cache
  // for unmasked tokens yields outputs nearly identical to full compute.
  const ActivationRecord cache = model_.Register(1);

  DiffusionModel::RunOptions full;
  const Matrix img_full = model_.EditImage(1, mask_, 9, full);

  DiffusionModel::RunOptions mask_aware;
  mask_aware.mode = ComputeMode::kMaskAwareY;
  mask_aware.cache = &cache;
  mask_aware.mask = &mask_;
  const Matrix img_cached = model_.EditImage(1, mask_, 9, mask_aware);

  const double full_range_err = MeanAbsDiff(img_full, img_cached);
  EXPECT_LT(full_range_err, 0.05);

  // And it must be materially closer to full compute than a sparse
  // (context-free) run is.
  DiffusionModel::RunOptions sparse;
  sparse.mode = ComputeMode::kSparse;
  sparse.mask = &mask_;
  const Matrix img_sparse = model_.EditImage(1, mask_, 9, sparse);
  EXPECT_LT(full_range_err, MeanAbsDiff(img_full, img_sparse));
}

TEST_F(DiffusionModelTest, KvModeMatchesYMode) {
  const ActivationRecord cache = model_.Register(1, /*record_kv=*/true);
  DiffusionModel::RunOptions y_mode;
  y_mode.mode = ComputeMode::kMaskAwareY;
  y_mode.cache = &cache;
  y_mode.mask = &mask_;
  DiffusionModel::RunOptions kv_mode = y_mode;
  kv_mode.mode = ComputeMode::kMaskAwareKV;

  const Matrix img_y = model_.EditImage(1, mask_, 9, y_mode);
  const Matrix img_kv = model_.EditImage(1, mask_, 9, kv_mode);
  // §3.1: the KV alternative changes cost, not results.
  EXPECT_LT(MeanAbsDiff(img_y, img_kv), 2e-3);
}

TEST_F(DiffusionModelTest, PartialCacheBlocksStillClose) {
  // The bubble-free pipeline may recompute some blocks in full; quality must
  // not degrade (recomputing is exact).
  const ActivationRecord cache = model_.Register(1);
  DiffusionModel::RunOptions full;
  const Matrix img_full = model_.EditImage(1, mask_, 9, full);

  DiffusionModel::RunOptions partial;
  partial.mode = ComputeMode::kMaskAwareY;
  partial.cache = &cache;
  partial.mask = &mask_;
  partial.use_cache_blocks = {true, false, true, false};
  const Matrix img_partial = model_.EditImage(1, mask_, 9, partial);

  DiffusionModel::RunOptions all_cached = partial;
  all_cached.use_cache_blocks.clear();
  const Matrix img_all = model_.EditImage(1, mask_, 9, all_cached);

  EXPECT_LT(MeanAbsDiff(img_full, img_partial),
            MeanAbsDiff(img_full, img_all) + 0.02);
  EXPECT_LT(MeanAbsDiff(img_full, img_partial), 0.05);
}

TEST_F(DiffusionModelTest, SparseLeavesUnmaskedPixelsUntouched) {
  DiffusionModel::RunOptions sparse;
  sparse.mode = ComputeMode::kSparse;
  sparse.mask = &mask_;

  const Matrix tmpl_latent = model_.EncodeTemplate(1);
  Matrix init = model_.InitEditLatent(tmpl_latent, mask_, 9);
  const auto result = model_.RunDenoise(init, sparse);
  for (const int t : mask_.unmasked_tokens) {
    for (int j = 0; j < model_.config().hidden; ++j) {
      EXPECT_EQ(result.final_latent.at(t, j), init.at(t, j));
    }
  }
}

TEST_F(DiffusionModelTest, TeaCacheSkipsStepsAndDegradesOutput) {
  DiffusionModel::RunOptions full;
  const Matrix img_full = model_.EditImage(1, mask_, 9, full);

  DiffusionModel::RunOptions tea;
  tea.mode = ComputeMode::kTeaCache;
  tea.teacache_threshold = 0.2;
  const Matrix tmpl_latent = model_.EncodeTemplate(1);
  Matrix init = model_.InitEditLatent(tmpl_latent, mask_, 9);
  const auto result = model_.RunDenoise(init, tea);
  EXPECT_GT(result.skipped_steps, 0);
  EXPECT_EQ(result.skipped_steps + result.computed_steps,
            model_.config().num_steps);

  const Matrix img_tea = model_.DecodeLatent(result.final_latent);
  EXPECT_GT(MeanAbsDiff(img_full, img_tea), 1e-4);
}

TEST_F(DiffusionModelTest, TeaCacheThresholdControlsSkipping) {
  const Matrix tmpl_latent = model_.EncodeTemplate(1);
  DiffusionModel::RunOptions tea;
  tea.mode = ComputeMode::kTeaCache;

  tea.teacache_threshold = 0.05;
  Matrix init = model_.InitEditLatent(tmpl_latent, mask_, 9);
  const auto low = model_.RunDenoise(init, tea);

  tea.teacache_threshold = 0.5;
  init = model_.InitEditLatent(tmpl_latent, mask_, 9);
  const auto high = model_.RunDenoise(init, tea);

  EXPECT_GE(high.skipped_steps, low.skipped_steps);
}

TEST_F(DiffusionModelTest, DecodeShapeAndRange) {
  const Matrix latent = model_.EncodeTemplate(2);
  const Matrix img = model_.DecodeLatent(latent);
  EXPECT_EQ(img.rows(), model_.config().image_h());
  EXPECT_EQ(img.cols(), model_.config().image_w());
  for (size_t i = 0; i < img.size(); ++i) {
    EXPECT_GE(img.data()[i], 0.0f);
    EXPECT_LE(img.data()[i], 1.0f);
  }
}

TEST_F(DiffusionModelTest, RecordedActivationsMatchRegistrationOnTemplateRun) {
  // Running the raw template through RunDenoise with a recorder must produce
  // the same activations as Register (they are the same computation).
  ActivationRecord via_register = model_.Register(1);

  ActivationRecord via_record;
  DiffusionModel::RunOptions options;
  options.record = &via_record;
  auto result = model_.RunDenoise(model_.EncodeTemplate(1), options);
  (void)result;

  ASSERT_EQ(via_record.steps.size(), via_register.steps.size());
  for (size_t s = 0; s < via_record.steps.size(); ++s) {
    for (size_t b = 0; b < via_record.steps[s].y.size(); ++b) {
      EXPECT_LT(MeanAbsDiff(via_record.steps[s].y[b],
                            via_register.steps[s].y[b]),
                1e-6)
          << "step " << s << " block " << b;
    }
  }
}

TEST_F(DiffusionModelTest, UnmaskedActivationsSimilarAcrossRequests) {
  // Fig. 6-Left: Y activations of unmasked tokens are highly similar across
  // different edits of the same template, masked tokens less so.
  DiffusionModel::RunOptions options;
  ActivationRecord rec_a;
  ActivationRecord rec_b;
  const Matrix tmpl = model_.EncodeTemplate(1);

  options.record = &rec_a;
  model_.RunDenoise(model_.InitEditLatent(tmpl, mask_, 111), options);
  options.record = &rec_b;
  model_.RunDenoise(model_.InitEditLatent(tmpl, mask_, 222), options);

  const int last_step = model_.config().num_steps - 1;
  const int last_block = model_.config().num_blocks - 1;
  const Matrix& ya = rec_a.steps[last_step].y[last_block];
  const Matrix& yb = rec_b.steps[last_step].y[last_block];

  double unmasked_sim = 0.0;
  for (const int t : mask_.unmasked_tokens) {
    unmasked_sim += CosineSimilarity(ya, t, yb, t);
  }
  unmasked_sim /= static_cast<double>(mask_.unmasked_tokens.size());

  double masked_sim = 0.0;
  for (const int t : mask_.masked_tokens) {
    masked_sim += CosineSimilarity(ya, t, yb, t);
  }
  masked_sim /= static_cast<double>(mask_.masked_tokens.size());

  EXPECT_GT(unmasked_sim, 0.95);
  EXPECT_GT(unmasked_sim, masked_sim);
}

}  // namespace
}  // namespace flashps::model
