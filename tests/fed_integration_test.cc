// Federation end-to-end: a fleet of real in-process flashps_served nodes
// (gateway + TcpServer each) behind a FedGateway front tier, driven over
// the wire by a net::Client, exactly as a deployed cluster runs.
//
// The acceptance property is failover invisibility: kill a node
// mid-trace (server stopped with a zero drain budget, so in-flight calls
// EOF like a crashed process) and every request still completes — zero
// failed requests, the orphans re-dispatched to sibling nodes — with
// latent checksums bitwise-identical to a single local gateway running
// the same trace. Determinism in (template, mask, seed, numerics) is
// what makes re-execution on a different machine safe to splice into a
// live trace.
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/fed/fed_gateway.h"
#include "src/net/client.h"
#include "src/net/tcp_server.h"
#include "src/trace/workload.h"

namespace flashps::fed {
namespace {

constexpr int kNumRequests = 18;

gateway::GatewayOptions NodeGatewayOptions() {
  gateway::GatewayOptions options;
  options.num_workers = 1;
  options.worker.numerics = model::NumericsConfig::ForTests();
  options.worker.numerics.num_steps = 2;
  options.worker.max_batch = 2;
  options.admission_control = false;
  return options;
}

std::vector<runtime::OnlineRequest> MakeRequests(int count) {
  const model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  Rng rng(2026);
  std::vector<runtime::OnlineRequest> requests;
  for (int i = 0; i < count; ++i) {
    runtime::OnlineRequest request;
    request.template_id = i % 3;
    request.prompt_seed = 4000 + static_cast<uint64_t>(i);
    request.mask = trace::GenerateBlobMask(
        numerics.grid_h, numerics.grid_w, 0.1 + 0.04 * (i % 8), rng);
    requests.push_back(request);
  }
  return requests;
}

// What a single local gateway produces for the same trace — the bitwise
// reference every federated run must reproduce.
std::vector<uint64_t> LocalChecksums(
    const std::vector<runtime::OnlineRequest>& requests) {
  gateway::Gateway gateway(NodeGatewayOptions());
  std::vector<uint64_t> checksums;
  for (const runtime::OnlineRequest& request : requests) {
    gateway::SubmitResult result = gateway.Submit(request);
    EXPECT_TRUE(result.accepted());
    checksums.push_back(net::LatentChecksum(result.future.get().image));
  }
  gateway.Stop();
  return checksums;
}

uint64_t JsonCounter(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    return ~0ull;
  }
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

// One in-process fleet node: a real gateway behind a real TcpServer.
struct FleetNode {
  std::unique_ptr<gateway::Gateway> gateway;
  std::unique_ptr<net::TcpServer> server;
};

FleetNode StartNode(std::chrono::milliseconds drain_timeout,
                    const std::string& auth_token = "") {
  FleetNode node;
  node.gateway = std::make_unique<gateway::Gateway>(NodeGatewayOptions());
  net::TcpServerOptions options;
  options.drain_timeout = drain_timeout;
  options.auth_token = auth_token;
  node.server = std::make_unique<net::TcpServer>(*node.gateway, options);
  EXPECT_TRUE(node.server->Start());
  return node;
}

FedGatewayOptions FastFedOptions(const std::vector<FleetNode>& fleet) {
  FedGatewayOptions options;
  for (const FleetNode& node : fleet) {
    options.nodes.push_back(FedNode{"127.0.0.1", node.server->port()});
  }
  options.registry.probe_interval = std::chrono::milliseconds(50);
  options.registry.probe_timeout = std::chrono::milliseconds(250);
  options.registry.suspect_after = 2;
  options.registry.dead_after = 3;
  options.connections_per_node = 1;
  options.call_timeout = std::chrono::milliseconds(60000);
  return options;
}

TEST(FedIntegrationTest, FederationMatchesLocalGatewayAndRollupReconciles) {
  const auto requests = MakeRequests(12);
  const std::vector<uint64_t> expected = LocalChecksums(requests);

  std::vector<FleetNode> fleet(3);
  for (FleetNode& node : fleet) {
    node = StartNode(std::chrono::milliseconds(10000));
  }
  FedGateway fed(FastFedOptions(fleet));
  fed.Start();
  for (size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(fed.registry().health(static_cast<int>(i)), NodeHealth::kAlive);
    EXPECT_TRUE(fed.registry().Info(static_cast<int>(i)).profile_loaded);
  }

  net::TcpServer front(fed);
  ASSERT_TRUE(front.Start());
  net::Client client("127.0.0.1", front.port());
  ASSERT_TRUE(client.Connect());

  std::vector<uint64_t> seqs;
  for (const runtime::OnlineRequest& request : requests) {
    net::WireRequest wire;
    wire.denoise_steps = 2;
    wire.request = request;
    const uint64_t seq = client.Send(wire);
    ASSERT_NE(seq, 0u);
    seqs.push_back(seq);
  }
  for (size_t i = 0; i < seqs.size(); ++i) {
    auto response = client.Await(seqs[i], std::chrono::milliseconds(120000));
    ASSERT_TRUE(response.has_value()) << "request " << i;
    EXPECT_EQ(response->submit_status(), gateway::SubmitStatus::kAccepted);
    EXPECT_EQ(response->latent_checksum, expected[i])
        << "request " << i << ": federated and local latents differ";
    EXPECT_GE(response->worker_id, 0);  // The node index that served it.
    EXPECT_LT(response->worker_id, 3);
  }

  // Federation counters: every request fulfilled, nothing failed.
  const FedGateway::Stats stats = fed.stats();
  EXPECT_EQ(stats.submitted, requests.size());
  EXPECT_EQ(stats.completed, requests.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.outstanding, 0u);
  EXPECT_EQ(stats.parked, 0u);

  // The wire rollup reconciles with the sum of the nodes' own counters:
  // each request was served by exactly one node.
  auto rollup = client.QueryMetrics(std::chrono::milliseconds(10000));
  ASSERT_TRUE(rollup.has_value());
  EXPECT_EQ(JsonCounter(*rollup, "submitted"), requests.size());
  EXPECT_EQ(JsonCounter(*rollup, "completed"), requests.size());
  EXPECT_EQ(JsonCounter(*rollup, "failed"), 0u);
  EXPECT_NE(rollup->find("\"members\":["), std::string::npos);

  uint64_t fleet_completed = 0;
  for (const FleetNode& node : fleet) {
    net::Client probe("127.0.0.1", node.server->port());
    ASSERT_TRUE(probe.Connect());
    auto metrics = probe.QueryMetrics(std::chrono::milliseconds(10000));
    ASSERT_TRUE(metrics.has_value());
    fleet_completed += JsonCounter(*metrics, "completed");
  }
  EXPECT_EQ(fleet_completed, requests.size());

  front.Stop();
  fed.StopAccepting();
  EXPECT_TRUE(fed.Drain());
  fed.Stop();
  for (FleetNode& node : fleet) {
    node.server->Stop();
    node.gateway->Stop();
  }
}

TEST(FedIntegrationTest, KillMidTraceFailsOverWithBitwiseIdenticalOutputs) {
  const auto requests = MakeRequests(kNumRequests);
  const std::vector<uint64_t> expected = LocalChecksums(requests);

  // Zero drain budget: stopping a node's server abandons its in-flight
  // work and slams the sockets shut, like a crashed process.
  std::vector<FleetNode> fleet(3);
  for (FleetNode& node : fleet) {
    node = StartNode(std::chrono::milliseconds(0));
  }
  FedGateway fed(FastFedOptions(fleet));
  fed.Start();

  net::TcpServer front(fed);
  ASSERT_TRUE(front.Start());
  net::Client client("127.0.0.1", front.port());
  ASSERT_TRUE(client.Connect());

  std::vector<uint64_t> seqs;
  for (const runtime::OnlineRequest& request : requests) {
    net::WireRequest wire;
    wire.denoise_steps = 2;
    wire.request = request;
    const uint64_t seq = client.Send(wire);
    ASSERT_NE(seq, 0u);
    seqs.push_back(seq);
  }

  // Let the trace get going, then kill the node carrying the most
  // unfinished work.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (fed.stats().completed < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(fed.stats().completed, 4u);
  int victim = 0;
  uint64_t victim_backlog = 0;
  for (int i = 0; i < 3; ++i) {
    const NodeInfo info = fed.registry().Info(i);
    const uint64_t backlog = info.dispatched - info.completed;
    if (backlog > victim_backlog) {
      victim_backlog = backlog;
      victim = i;
    }
  }
  ASSERT_GT(victim_backlog, 0u);
  fleet[static_cast<size_t>(victim)].server->Stop();

  // Zero failed requests, and every reply bitwise-matches the reference.
  for (size_t i = 0; i < seqs.size(); ++i) {
    auto response = client.Await(seqs[i], std::chrono::milliseconds(120000));
    ASSERT_TRUE(response.has_value()) << "request " << i;
    EXPECT_EQ(response->submit_status(), gateway::SubmitStatus::kAccepted)
        << "request " << i << " failed despite failover";
    EXPECT_EQ(response->latent_checksum, expected[i])
        << "request " << i
        << ": failover changed the output (served by node "
        << response->worker_id << ")";
  }

  const FedGateway::Stats stats = fed.stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kNumRequests));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.redispatched, 1u);  // The kill really interrupted work.

  // The prober needs a few beats (dead_after consecutive misses) to write
  // the victim off; the trace above often outruns it because failover
  // rides the per-dispatch transport failures, not death detection.
  const auto probe_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fed.registry().health(victim) != NodeHealth::kDead &&
         std::chrono::steady_clock::now() < probe_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fed.registry().health(victim), NodeHealth::kDead);
  EXPECT_FALSE(fed.registry().Routable(victim));

  front.Stop();
  fed.StopAccepting();
  EXPECT_TRUE(fed.Drain());
  fed.Stop();
  for (size_t i = 0; i < fleet.size(); ++i) {
    fleet[i].server->Stop();
    fleet[i].gateway->Stop();
  }
}

TEST(FedIntegrationTest, AuthTokenFlowsFromClientThroughFedToNodes) {
  const auto requests = MakeRequests(4);
  const std::vector<uint64_t> expected = LocalChecksums(requests);

  std::vector<FleetNode> fleet(2);
  for (FleetNode& node : fleet) {
    node = StartNode(std::chrono::milliseconds(10000), "fleet-secret");
  }
  FedGatewayOptions options = FastFedOptions(fleet);
  options.auth_token = "fleet-secret";
  FedGateway fed(options);
  fed.Start();
  for (size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(fed.registry().health(static_cast<int>(i)), NodeHealth::kAlive);
  }

  net::TcpServerOptions front_options;
  front_options.auth_token = "fleet-secret";
  net::TcpServer front(fed, front_options);
  ASSERT_TRUE(front.Start());

  // Unauthenticated and wrong-token clients are refused at the front.
  net::Client bare("127.0.0.1", front.port());
  ASSERT_TRUE(bare.Connect());  // No token, no handshake: session opens...
  EXPECT_FALSE(bare.QueryMetrics(std::chrono::milliseconds(2000))
                   .has_value());  // ...but the first real frame is refused.
  net::ClientOptions wrong;
  wrong.auth_token = "wrong";
  net::Client impostor("127.0.0.1", front.port(), wrong);
  EXPECT_FALSE(impostor.Connect());

  // The authenticated path works end to end: client -> fed -> nodes.
  net::ClientOptions right;
  right.auth_token = "fleet-secret";
  net::Client client("127.0.0.1", front.port(), right);
  ASSERT_TRUE(client.Connect());
  for (size_t i = 0; i < requests.size(); ++i) {
    net::WireRequest wire;
    wire.denoise_steps = 2;
    wire.request = requests[i];
    auto response =
        client.Call(wire, std::chrono::milliseconds(120000));
    ASSERT_TRUE(response.has_value()) << "request " << i;
    EXPECT_EQ(response->submit_status(), gateway::SubmitStatus::kAccepted);
    EXPECT_EQ(response->latent_checksum, expected[i]);
  }

  front.Stop();
  fed.StopAccepting();
  EXPECT_TRUE(fed.Drain());
  fed.Stop();
  for (FleetNode& node : fleet) {
    node.server->Stop();
    node.gateway->Stop();
  }
}

}  // namespace
}  // namespace flashps::fed
