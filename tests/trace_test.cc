#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/stats.h"
#include "src/trace/workload.h"

namespace flashps::trace {
namespace {

TEST(MaskRatioDistributionTest, MeansMatchPaperFig3) {
  Rng rng(1);
  struct Case {
    TraceKind kind;
    double mean;
  };
  // Paper §2.2: average ratios 0.11 (production), 0.19 (public),
  // 0.35 (VITON-HD).
  for (const Case c : {Case{TraceKind::kProduction, 0.11},
                       Case{TraceKind::kPublic, 0.19},
                       Case{TraceKind::kVitonHd, 0.35}}) {
    const MaskRatioDistribution dist(c.kind);
    EXPECT_NEAR(dist.mean(), c.mean, 0.005) << ToString(c.kind);
    StatAccumulator acc;
    for (int i = 0; i < 30000; ++i) {
      const double r = dist.Sample(rng);
      EXPECT_GT(r, 0.0);
      EXPECT_LT(r, 1.0);
      acc.Add(r);
    }
    EXPECT_NEAR(acc.Mean(), c.mean, 0.01) << ToString(c.kind);
    // The paper stresses wide variation in individual ratios.
    EXPECT_GT(acc.Stddev(), 0.05) << ToString(c.kind);
  }
}

class BlobMaskTest : public ::testing::TestWithParam<double> {};

TEST_P(BlobMaskTest, RatioAndConnectivity) {
  Rng rng(42);
  const double ratio = GetParam();
  const Mask mask = GenerateBlobMask(16, 16, ratio, rng);
  EXPECT_EQ(mask.total_tokens(), 256);
  EXPECT_NEAR(mask.ratio(), ratio, 1.5 / 256.0);

  // Partition property: masked + unmasked = all tokens, disjoint.
  std::set<int> all(mask.masked_tokens.begin(), mask.masked_tokens.end());
  for (const int t : mask.unmasked_tokens) {
    EXPECT_TRUE(all.insert(t).second);
  }
  EXPECT_EQ(static_cast<int>(all.size()), 256);

  // Connectivity: BFS from the first masked token reaches all of them.
  std::set<int> masked(mask.masked_tokens.begin(), mask.masked_tokens.end());
  std::vector<int> stack = {mask.masked_tokens.front()};
  std::set<int> seen = {mask.masked_tokens.front()};
  while (!stack.empty()) {
    const int cell = stack.back();
    stack.pop_back();
    const int r = cell / 16;
    const int c = cell % 16;
    const int nbs[4] = {r > 0 ? cell - 16 : -1, r < 15 ? cell + 16 : -1,
                        c > 0 ? cell - 1 : -1, c < 15 ? cell + 1 : -1};
    for (const int nb : nbs) {
      if (nb >= 0 && masked.count(nb) && !seen.count(nb)) {
        seen.insert(nb);
        stack.push_back(nb);
      }
    }
  }
  EXPECT_EQ(seen.size(), masked.size());
}

INSTANTIATE_TEST_SUITE_P(Ratios, BlobMaskTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.35, 0.5, 0.8,
                                           0.99));

TEST(BlobMaskTest, SortedTokenLists) {
  Rng rng(3);
  const Mask mask = GenerateBlobMask(12, 12, 0.3, rng);
  EXPECT_TRUE(std::is_sorted(mask.masked_tokens.begin(),
                             mask.masked_tokens.end()));
  EXPECT_TRUE(std::is_sorted(mask.unmasked_tokens.begin(),
                             mask.unmasked_tokens.end()));
}

TEST(RectMaskTest, RatioApproximatelyMet) {
  Rng rng(4);
  for (const double ratio : {0.1, 0.25, 0.5}) {
    const Mask mask = GenerateRectMask(16, 16, ratio, rng);
    EXPECT_NEAR(mask.ratio(), ratio, 0.08);
  }
}

TEST(TemplateCatalogTest, PopularityIsSkewed) {
  Rng rng(5);
  const TemplateCatalog catalog(970, 1.1);
  std::vector<int> counts(970, 0);
  for (int i = 0; i < 100000; ++i) {
    const int t = catalog.SampleTemplate(rng);
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 970);
    ++counts[t];
  }
  EXPECT_GT(counts[0], counts[500] * 5);
}

TEST(PoissonArrivalsTest, RateMatches) {
  Rng rng(6);
  PoissonArrivals arrivals(2.0, rng);
  TimePoint last;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const TimePoint t = arrivals.Next();
    EXPECT_GT(t, last);
    last = t;
  }
  // n arrivals at 2 rps should take ~n/2 seconds.
  EXPECT_NEAR(last.seconds(), n / 2.0, n / 2.0 * 0.05);
}

TEST(BurstyArrivalsTest, StrictlyIncreasingAndRateBetweenPhases) {
  Rng rng(7);
  BurstyArrivals arrivals(1.0, 10.0, Duration::Seconds(5.0), rng);
  TimePoint last;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const TimePoint t = arrivals.Next();
    EXPECT_GT(t, last);
    last = t;
  }
  const double avg_rate = n / last.seconds();
  EXPECT_GT(avg_rate, 1.0);
  EXPECT_LT(avg_rate, 10.0);
}

TEST(GenerateWorkloadTest, DeterministicAndWellFormed) {
  WorkloadSpec spec;
  spec.num_requests = 500;
  spec.rps = 3.0;
  const auto a = GenerateWorkload(spec);
  const auto b = GenerateWorkload(spec);
  ASSERT_EQ(a.size(), 500u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].arrival.micros(), b[i].arrival.micros());
    EXPECT_EQ(a[i].template_id, b[i].template_id);
    EXPECT_DOUBLE_EQ(a[i].mask_ratio, b[i].mask_ratio);
    EXPECT_GT(a[i].mask_ratio, 0.0);
    EXPECT_LT(a[i].mask_ratio, 1.0);
    if (i > 0) {
      EXPECT_GT(a[i].arrival, a[i - 1].arrival);
    }
  }
}

TEST(ParseResolutionTest, AcceptsHxWAndRejectsJunk) {
  int h = 0;
  int w = 0;
  EXPECT_TRUE(ParseResolution("96x64", &h, &w));
  EXPECT_EQ(h, 96);
  EXPECT_EQ(w, 64);
  for (const char* bad : {"", "x", "96", "96x", "x64", "0x64", "96x0",
                          "-4x4", "96x64x32", "96 x 64", "axb"}) {
    EXPECT_FALSE(ParseResolution(bad, &h, &w)) << bad;
  }
}

TEST(GenerateWorkloadTest, ResolutionMixtureIsDeterministic) {
  WorkloadSpec spec;
  spec.num_requests = 300;
  spec.rps = 2.0;
  spec.resolutions = {{48, 48, 1.0}, {64, 64, 2.0}, {96, 96, 1.0}};
  const auto a = GenerateWorkload(spec);
  const auto b = GenerateWorkload(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].grid_h, b[i].grid_h);
    EXPECT_EQ(a[i].grid_w, b[i].grid_w);
    EXPECT_TRUE(a[i].has_resolution());
  }
}

TEST(GenerateWorkloadTest, ResolutionMixtureHonorsProportions) {
  WorkloadSpec spec;
  spec.num_requests = 4000;
  spec.rps = 50.0;
  spec.resolutions = {{48, 48, 0.25}, {64, 64, 0.5}, {96, 96, 0.25}};
  const auto requests = GenerateWorkload(spec);
  int small = 0;
  int native = 0;
  int big = 0;
  for (const Request& r : requests) {
    if (r.grid_h == 48) {
      ++small;
    } else if (r.grid_h == 64) {
      ++native;
    } else {
      ASSERT_EQ(r.grid_h, 96);
      ++big;
    }
  }
  const double n = static_cast<double>(requests.size());
  EXPECT_NEAR(small / n, 0.25, 0.03);
  EXPECT_NEAR(native / n, 0.5, 0.03);
  EXPECT_NEAR(big / n, 0.25, 0.03);
}

TEST(GenerateWorkloadTest, EmptyMixtureIsBitwiseLegacyTrace) {
  // The resolution stream splits off AFTER the legacy streams, so a spec
  // with no mixture reproduces pre-mixture traces exactly.
  WorkloadSpec spec;
  spec.num_requests = 200;
  spec.rps = 3.0;
  const auto legacy = GenerateWorkload(spec);
  spec.resolutions = {{64, 64, 1.0}};
  const auto mixed = GenerateWorkload(spec);
  ASSERT_EQ(legacy.size(), mixed.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].arrival.micros(), mixed[i].arrival.micros());
    EXPECT_EQ(legacy[i].template_id, mixed[i].template_id);
    EXPECT_DOUBLE_EQ(legacy[i].mask_ratio, mixed[i].mask_ratio);
    EXPECT_EQ(legacy[i].denoise_steps, mixed[i].denoise_steps);
    EXPECT_EQ(legacy[i].grid_h, 0);
    EXPECT_EQ(mixed[i].grid_h, 64);  // Only the grid columns differ.
  }
}

TEST(GenerateWorkloadTest, MalformedMixtureThrows) {
  WorkloadSpec spec;
  spec.num_requests = 4;
  spec.resolutions = {{0, 64, 1.0}};
  EXPECT_THROW(GenerateWorkload(spec), std::runtime_error);
  spec.resolutions = {{64, 64, 0.0}};
  EXPECT_THROW(GenerateWorkload(spec), std::runtime_error);
  spec.resolutions = {{64, 64, -1.0}};
  EXPECT_THROW(GenerateWorkload(spec), std::runtime_error);
}

TEST(GenerateWorkloadTest, DifferentSeedsDiffer) {
  WorkloadSpec spec;
  spec.num_requests = 50;
  auto a = GenerateWorkload(spec);
  spec.seed = 43;
  auto b = GenerateWorkload(spec);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].mask_ratio != b[i].mask_ratio;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace flashps::trace
