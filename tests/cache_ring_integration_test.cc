// Cache-ring integration over loopback:
//
//  1. A worker fleet whose activation source is a ShardedRemoteStore over
//     three cache nodes produces latent checksums bitwise-identical to a
//     fleet on the default local store — cold (miss, register, replicate
//     k ways) and warm (whole records fetched off the ring).
//  2. Killing one ring member mid-run never fails a request and never
//     changes an output bit: surviving members absorb the dead member's
//     ranges, so the fleet stays bitwise-identical with zero fallbacks.
//  3. The gateway's MetricsJson carries the per-member ring counters.
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/cache/ring/sharded_store.h"
#include "src/common/rng.h"
#include "src/gateway/gateway.h"
#include "src/net/cache_node.h"
#include "src/net/tcp_server.h"

namespace flashps::net {
namespace {

constexpr int kNumRequests = 8;
constexpr int kNumTemplates = 3;
constexpr int kRingSize = 3;

gateway::GatewayOptions FleetOptions() {
  gateway::GatewayOptions options;
  options.num_workers = 2;
  options.worker.numerics = model::NumericsConfig::ForTests();
  options.worker.numerics.num_steps = 2;
  options.worker.max_batch = 3;
  options.admission_control = false;
  return options;
}

std::vector<runtime::OnlineRequest> MakeRequests(int count,
                                                 int first_template = 0) {
  const model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  Rng rng(2026);
  std::vector<runtime::OnlineRequest> requests;
  for (int i = 0; i < count; ++i) {
    runtime::OnlineRequest request;
    request.template_id = first_template + i % kNumTemplates;
    request.prompt_seed = 1000 + static_cast<uint64_t>(i);
    request.mask = trace::GenerateBlobMask(numerics.grid_h, numerics.grid_w,
                                           0.1 + 0.05 * i, rng);
    requests.push_back(request);
  }
  return requests;
}

// Runs every request through a fleet configured with `source` (null = the
// default worker-resolved local store) and returns the latent checksums.
std::vector<uint64_t> RunFleet(
    const std::vector<runtime::OnlineRequest>& requests,
    std::shared_ptr<cache::ActivationSource> source) {
  gateway::GatewayOptions options = FleetOptions();
  options.worker.activation_source = std::move(source);
  gateway::Gateway gw(options);
  std::vector<uint64_t> checksums;
  std::vector<std::future<runtime::OnlineResponse>> futures;
  for (const runtime::OnlineRequest& request : requests) {
    gateway::SubmitResult result = gw.Submit(request);
    EXPECT_TRUE(result.accepted());
    futures.push_back(std::move(result.future));
  }
  for (auto& future : futures) {
    checksums.push_back(LatentChecksum(future.get().image));
  }
  gw.Stop();
  return checksums;
}

// A three-node loopback ring the tests can kill members of.
class CacheRingFleet {
 public:
  CacheRingFleet() {
    for (int i = 0; i < kRingSize; ++i) {
      nodes_.push_back(std::make_unique<CacheNode>());
      servers_.push_back(std::make_unique<TcpServer>(nodes_[i]->Service()));
      EXPECT_TRUE(servers_[i]->Start());
    }
  }

  ~CacheRingFleet() {
    for (auto& server : servers_) {
      if (server != nullptr) {
        server->Stop();
      }
    }
  }

  cache::ShardedStoreOptions StoreOptions(int replication = 2) const {
    cache::ShardedStoreOptions options;
    for (const auto& server : servers_) {
      options.nodes.push_back({"127.0.0.1", server->port()});
    }
    options.replication = replication;
    options.connect_attempts = 1;
    options.connect_backoff = std::chrono::milliseconds(1);
    return options;
  }

  void KillMember(int index) { servers_[static_cast<size_t>(index)]->Stop(); }

  int ResidentCopies(int template_id) const {
    CacheKey key;
    key.template_id = template_id;
    key.step = 0;
    key.block = 0;
    key.kind = kCacheKindY;
    int copies = 0;
    for (const auto& node : nodes_) {
      if (node->Contains(key)) {
        ++copies;
      }
    }
    return copies;
  }

 private:
  std::vector<std::unique_ptr<CacheNode>> nodes_;
  std::vector<std::unique_ptr<TcpServer>> servers_;
};

TEST(CacheRingIntegrationTest, RingFleetMatchesLocalFleetBitwise) {
  CacheRingFleet ring;
  const std::vector<runtime::OnlineRequest> requests =
      MakeRequests(kNumRequests);
  const std::vector<uint64_t> local = RunFleet(requests, nullptr);

  // --- cold fleet: every template misses, registers, replicates k ways ---
  auto cold_store =
      std::make_shared<cache::ShardedRemoteStore>(ring.StoreOptions());
  const std::vector<uint64_t> cold = RunFleet(requests, cold_store);
  ASSERT_EQ(cold.size(), local.size());
  for (size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ(cold[i], local[i]) << "request " << i
                                 << ": ring-sourced latent differs";
  }
  const cache::ShardedStoreStats cold_stats = cold_store->Stats();
  EXPECT_EQ(cold_stats.remote_misses, static_cast<uint64_t>(kNumTemplates));
  EXPECT_EQ(cold_stats.fallbacks, 0u);
  // k copies of every template landed on the fleet.
  EXPECT_EQ(cold_stats.puts_ok, static_cast<uint64_t>(2 * kNumTemplates));
  for (int t = 0; t < kNumTemplates; ++t) {
    EXPECT_EQ(ring.ResidentCopies(t), 2) << "template " << t;
  }
  EXPECT_EQ(cold_stats.front_hits + cold_stats.singleflight_waits,
            static_cast<uint64_t>(kNumRequests - kNumTemplates));

  // --- warm fleet: a fresh front fetches whole records off the ring ------
  auto warm_store =
      std::make_shared<cache::ShardedRemoteStore>(ring.StoreOptions());
  const std::vector<uint64_t> warm = RunFleet(requests, warm_store);
  for (size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ(warm[i], local[i]) << "request " << i
                                 << ": warm ring latent differs";
  }
  const cache::ShardedStoreStats warm_stats = warm_store->Stats();
  EXPECT_EQ(warm_stats.remote_hits, static_cast<uint64_t>(kNumTemplates));
  EXPECT_EQ(warm_stats.remote_misses, 0u);
  EXPECT_EQ(warm_stats.local_registrations, 0u);
  EXPECT_EQ(warm_stats.fallbacks, 0u);
  // Every hit is attributed to a specific member, not a blended average.
  uint64_t member_hits = 0;
  for (const cache::RingMemberStats& m : warm_stats.members) {
    member_hits += m.remote_hits;
  }
  EXPECT_EQ(member_hits, warm_stats.remote_hits);
}

TEST(CacheRingIntegrationTest, KilledMemberMidRunStaysBitwiseIdentical) {
  CacheRingFleet ring;

  // Reference run on a local fleet: 4 warm templates + 3 post-kill ones.
  std::vector<runtime::OnlineRequest> warm_requests = MakeRequests(4);
  std::vector<runtime::OnlineRequest> late_requests =
      MakeRequests(3, /*first_template=*/100);
  std::vector<runtime::OnlineRequest> all = warm_requests;
  all.insert(all.end(), late_requests.begin(), late_requests.end());
  const std::vector<uint64_t> reference = RunFleet(all, nullptr);

  cache::ShardedStoreOptions store_options = ring.StoreOptions();
  store_options.call_timeout = std::chrono::milliseconds(2000);
  auto store = std::make_shared<cache::ShardedRemoteStore>(store_options);
  gateway::GatewayOptions options = FleetOptions();
  options.worker.activation_source = store;
  gateway::Gateway gw(options);

  std::vector<std::future<runtime::OnlineResponse>> futures;
  for (const auto& request : warm_requests) {
    gateway::SubmitResult result = gw.Submit(request);
    ASSERT_TRUE(result.accepted());
    futures.push_back(std::move(result.future));
  }
  // One ring member dies while the fleet may still be mid-flight, then new
  // templates keep arriving. Unlike the single-node tier (where this
  // degrades to local fallback), the two surviving members absorb the dead
  // member's ranges: every request completes through the ring.
  ring.KillMember(1);
  for (const auto& request : late_requests) {
    gateway::SubmitResult result = gw.Submit(request);
    ASSERT_TRUE(result.accepted());
    futures.push_back(std::move(result.future));
  }

  ASSERT_EQ(futures.size(), reference.size());
  for (size_t i = 0; i < futures.size(); ++i) {
    const runtime::OnlineResponse response = futures[i].get();
    EXPECT_EQ(LatentChecksum(response.image), reference[i])
        << "request " << i << " diverged after the ring member died";
  }
  const cache::ShardedStoreStats stats = store->Stats();
  // Zero failed Acquires AND zero local fallbacks: with two members alive,
  // the ring itself stayed serviceable for every template.
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_EQ(stats.front_hits + stats.singleflight_waits + stats.remote_hits +
                stats.remote_misses + stats.fallbacks +
                stats.prefetch_coalesced,
            static_cast<uint64_t>(futures.size()));
  gw.Stop();
}

TEST(CacheRingIntegrationTest, GatewayMetricsCarryRingMembers) {
  CacheRingFleet ring;
  gateway::GatewayOptions options = FleetOptions();
  auto store =
      std::make_shared<cache::ShardedRemoteStore>(ring.StoreOptions());
  options.worker.activation_source = store;
  gateway::Gateway gw(options);
  gateway::SubmitResult result = gw.Submit(MakeRequests(1).front());
  ASSERT_TRUE(result.accepted());
  result.future.get();

  // One JSON dump: gateway splices the store's metrics, and the store's
  // metrics carry the per-member breakdown.
  const std::string json = gw.MetricsJson();
  EXPECT_NE(json.find("\"activation_source\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"sharded\""), std::string::npos);
  EXPECT_NE(json.find("\"members\":["), std::string::npos);
  for (const cache::RingMember& member : store->ring().members()) {
    EXPECT_NE(json.find("\"id\":\"" + member.id() + "\""), std::string::npos)
        << member.id();
  }

  gw.Stop();
}

}  // namespace
}  // namespace flashps::net
