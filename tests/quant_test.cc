// Properties of the multi-precision activation codec (src/tensor/quant):
// f32 is bitwise, f16 is IEEE round-to-nearest-even with exhaustively
// verified bit patterns, int8 honours its per-row half-scale error bound,
// degenerate shapes survive every dtype, and the strict decoder rejects
// every malformed dtype/length combination it is shown.
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/tensor/matrix.h"
#include "src/tensor/quant.h"

namespace flashps::quant {
namespace {

Matrix TestMatrix(int rows, int cols, uint64_t seed, float scale = 1.0f) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.FillNormal(rng, scale);
  return m;
}

float BitsToFloat(uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

uint32_t FloatToBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

// --- f16 conversion -------------------------------------------------------

TEST(QuantF16Test, AllFiniteHalfBitPatternsRoundTripExactly) {
  // Every finite half value is exactly representable in f32, so
  // half -> f32 -> half must reproduce the identical bit pattern. This
  // covers normals, subnormals, both zeros, and both infinities.
  for (uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const uint16_t h = static_cast<uint16_t>(bits);
    const bool is_nan = (h & 0x7c00) == 0x7c00 && (h & 0x03ff) != 0;
    const float f = F16ToF32(h);
    if (is_nan) {
      EXPECT_TRUE(std::isnan(f)) << std::hex << bits;
      continue;
    }
    EXPECT_EQ(F32ToF16(f), h) << std::hex << bits;
  }
}

TEST(QuantF16Test, KnownValuesConvertExactly) {
  EXPECT_EQ(F32ToF16(0.0f), 0x0000);
  EXPECT_EQ(F32ToF16(-0.0f), 0x8000);
  EXPECT_EQ(F32ToF16(1.0f), 0x3c00);
  EXPECT_EQ(F32ToF16(-2.0f), 0xc000);
  EXPECT_EQ(F32ToF16(65504.0f), 0x7bff);  // Largest finite half.
  EXPECT_EQ(F32ToF16(65536.0f), 0x7c00);  // Overflows to +inf.
  EXPECT_EQ(F32ToF16(std::numeric_limits<float>::infinity()), 0x7c00);
  EXPECT_EQ(F32ToF16(std::ldexp(1.0f, -24)), 0x0001);  // Smallest subnormal.
  EXPECT_EQ(F32ToF16(std::ldexp(1.0f, -25)), 0x0000);  // Ties to even: zero.
  EXPECT_TRUE(std::isnan(F16ToF32(F32ToF16(
      std::numeric_limits<float>::quiet_NaN()))));
}

TEST(QuantF16Test, RoundsToNearestEven) {
  // 1 + 2^-11 sits exactly between half(1.0) and the next half up
  // (1 + 2^-10); round-to-even keeps the even significand, 1.0.
  EXPECT_EQ(F32ToF16(1.0f + std::ldexp(1.0f, -11)), 0x3c00);
  // 1 + 3*2^-11 sits between 1+2^-10 and 1+2^-9; even is 1+2^-9.
  EXPECT_EQ(F32ToF16(1.0f + 3 * std::ldexp(1.0f, -11)), 0x3c02);
  // Anything past the midpoint rounds up.
  EXPECT_EQ(F32ToF16(1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -18)),
            0x3c01);
}

TEST(QuantF16Test, RelativeErrorBoundedForNormals) {
  const Matrix m = TestMatrix(32, 32, 21, 8.0f);
  for (size_t i = 0; i < m.size(); ++i) {
    const float x = m.data()[i];
    const float back = F16ToF32(F32ToF16(x));
    // Half a ulp of a normal half value: 2^-11 relative.
    EXPECT_LE(std::abs(back - x),
              std::max(std::abs(x) * std::ldexp(1.0f, -11),
                       std::ldexp(1.0f, -24)))
        << x;
  }
}

// --- Encode/Decode round trips --------------------------------------------

TEST(QuantCodecTest, F32RoundTripIsBitwise) {
  Matrix m = TestMatrix(7, 5, 22);
  // Splice in the awkward bit patterns a fill never produces.
  m.data()[0] = -0.0f;
  m.data()[1] = std::numeric_limits<float>::denorm_min();
  m.data()[2] = -std::numeric_limits<float>::max();
  const EncodedMatrix encoded = Encode(m, Dtype::kF32);
  EXPECT_EQ(encoded.StoredBytes(), m.bytes());
  EXPECT_TRUE(encoded.scales.empty());
  Matrix back;
  ASSERT_TRUE(Decode(encoded, &back, nullptr));
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(FloatToBits(back.data()[i]), FloatToBits(m.data()[i])) << i;
  }
}

TEST(QuantCodecTest, F16RoundTripHalvesBytes) {
  const Matrix m = TestMatrix(9, 6, 23);
  const EncodedMatrix encoded = Encode(m, Dtype::kF16);
  EXPECT_EQ(encoded.StoredBytes(), m.bytes() / 2);
  Matrix back;
  ASSERT_TRUE(Decode(encoded, &back, nullptr));
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(back.data()[i], F16ToF32(F32ToF16(m.data()[i]))) << i;
  }
}

TEST(QuantCodecTest, I8RoundTripHonoursPerRowErrorBound) {
  // Rows of wildly different magnitude: per-row scaling must bound each
  // row's absolute error by half its own scale, not the matrix max.
  Matrix m(4, 64);
  for (int r = 0; r < m.rows(); ++r) {
    const float row_scale = std::ldexp(1.0f, 4 * r - 6);  // 2^-6 .. 2^6.
    Rng rng(24 + static_cast<uint64_t>(r));
    for (int c = 0; c < m.cols(); ++c) {
      m.at(r, c) =
          row_scale * static_cast<float>(rng.Uniform(-0.5, 0.5));
    }
  }
  const EncodedMatrix encoded = Encode(m, Dtype::kI8);
  EXPECT_EQ(encoded.StoredBytes(),
            m.size() + static_cast<size_t>(m.rows()) * sizeof(float));
  ASSERT_EQ(encoded.scales.size(), static_cast<size_t>(m.rows()));
  Matrix back;
  ASSERT_TRUE(Decode(encoded, &back, nullptr));
  for (int r = 0; r < m.rows(); ++r) {
    float max_abs = 0.0f;
    for (int c = 0; c < m.cols(); ++c) {
      max_abs = std::max(max_abs, std::abs(m.at(r, c)));
    }
    const float bound = encoded.scales[static_cast<size_t>(r)] * 0.5f;
    EXPECT_GE(bound, 0.0f);
    EXPECT_LE(encoded.scales[static_cast<size_t>(r)] * 127.0f,
              max_abs * 1.0001f);
    for (int c = 0; c < m.cols(); ++c) {
      EXPECT_LE(std::abs(back.at(r, c) - m.at(r, c)), bound + 1e-12f)
          << r << "," << c;
    }
  }
}

TEST(QuantCodecTest, I8AllZeroRowEncodesToZeros) {
  Matrix m(2, 8);  // Zero-initialised.
  m.at(1, 3) = 0.5f;  // One live row, one all-zero row.
  const EncodedMatrix encoded = Encode(m, Dtype::kI8);
  EXPECT_EQ(encoded.scales[0], 0.0f);
  Matrix back;
  ASSERT_TRUE(Decode(encoded, &back, nullptr));
  for (int c = 0; c < m.cols(); ++c) {
    EXPECT_EQ(back.at(0, c), 0.0f);
  }
  EXPECT_NEAR(back.at(1, 3), 0.5f, 0.5f / 127.0f);
}

TEST(QuantCodecTest, DegenerateShapesSurviveEveryDtype) {
  for (const Dtype dtype : {Dtype::kF32, Dtype::kF16, Dtype::kI8}) {
    for (const auto& [rows, cols] :
         std::vector<std::pair<int, int>>{{0, 0}, {1, 1}, {1, 7}, {5, 1}}) {
      const Matrix m = TestMatrix(rows, cols, 25);
      const EncodedMatrix encoded = Encode(m, dtype);
      Matrix back;
      std::string error;
      ASSERT_TRUE(Decode(encoded, &back, &error))
          << ToString(dtype) << " " << rows << "x" << cols << ": " << error;
      EXPECT_EQ(back.rows(), rows);
      EXPECT_EQ(back.cols(), cols);
    }
  }
}

// --- strict decoding ------------------------------------------------------

TEST(QuantCodecTest, DecodeRejectsMalformedCombinations) {
  const Matrix m = TestMatrix(3, 4, 26);
  Matrix out;
  std::string error;

  EncodedMatrix bad = Encode(m, Dtype::kF32);
  bad.payload.pop_back();  // Payload short for the declared shape.
  EXPECT_FALSE(Decode(bad, &out, &error));

  bad = Encode(m, Dtype::kF16);
  bad.payload.push_back(0);  // Payload long for the declared shape.
  EXPECT_FALSE(Decode(bad, &out, &error));

  bad = Encode(m, Dtype::kI8);
  bad.scales.pop_back();  // One scale per row or nothing.
  EXPECT_FALSE(Decode(bad, &out, &error));

  bad = Encode(m, Dtype::kF32);
  bad.scales.push_back(1.0f);  // f32 declares no scales.
  EXPECT_FALSE(Decode(bad, &out, &error));

  bad = Encode(m, Dtype::kF32);
  bad.rows = -1;
  EXPECT_FALSE(Decode(bad, &out, &error));

  bad = Encode(m, Dtype::kF32);
  bad.dtype = static_cast<Dtype>(7);
  EXPECT_FALSE(Decode(bad, &out, &error));
  EXPECT_FALSE(ValidDtypeTag(7));
  EXPECT_TRUE(ValidDtypeTag(0));
}

// --- policy ---------------------------------------------------------------

TEST(QuantPolicyTest, ParsePrecisionModeAcceptsTheFlagSpellings) {
  PrecisionMode mode;
  EXPECT_TRUE(ParsePrecisionMode("lossless", &mode));
  EXPECT_EQ(mode, PrecisionMode::kLossless);
  EXPECT_TRUE(ParsePrecisionMode("fp16", &mode));
  EXPECT_EQ(mode, PrecisionMode::kF16);
  EXPECT_TRUE(ParsePrecisionMode("staged", &mode));
  EXPECT_EQ(mode, PrecisionMode::kStaged);
  EXPECT_FALSE(ParsePrecisionMode("int8", &mode));
  EXPECT_FALSE(ParsePrecisionMode("", &mode));
}

TEST(QuantPolicyTest, DtypeForStepMatchesTheStagePolicy) {
  // Lossless and fp16 ignore the step entirely.
  for (int step = 0; step < 8; ++step) {
    EXPECT_EQ(DtypeForStep(PrecisionMode::kLossless, step, 8), Dtype::kF32);
    EXPECT_EQ(DtypeForStep(PrecisionMode::kF16, step, 8), Dtype::kF16);
  }
  // Staged: f16 while structure forms (first half, rounded up), i8 for
  // the refinement tail.
  EXPECT_EQ(DtypeForStep(PrecisionMode::kStaged, 0, 4), Dtype::kF16);
  EXPECT_EQ(DtypeForStep(PrecisionMode::kStaged, 1, 4), Dtype::kF16);
  EXPECT_EQ(DtypeForStep(PrecisionMode::kStaged, 2, 4), Dtype::kI8);
  EXPECT_EQ(DtypeForStep(PrecisionMode::kStaged, 3, 4), Dtype::kI8);
  // Odd step counts round the f16 prefix up; one step is still f16.
  EXPECT_EQ(DtypeForStep(PrecisionMode::kStaged, 2, 5), Dtype::kF16);
  EXPECT_EQ(DtypeForStep(PrecisionMode::kStaged, 3, 5), Dtype::kI8);
  EXPECT_EQ(DtypeForStep(PrecisionMode::kStaged, 0, 1), Dtype::kF16);
}

}  // namespace
}  // namespace flashps::quant
