#include <gtest/gtest.h>

#include <filesystem>

#include "src/cache/disk_store.h"

namespace flashps::cache {
namespace {

class DiskStoreTest : public ::testing::Test {
 protected:
  DiskStoreTest()
      : dir_(std::filesystem::temp_directory_path() /
             ("flashps_disk_test_" + std::to_string(::getpid()))),
        model_(model::NumericsConfig::ForTests()) {}
  ~DiskStoreTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
  model::DiffusionModel model_;
};

void ExpectRecordsEqual(const model::ActivationRecord& a,
                        const model::ActivationRecord& b) {
  ASSERT_EQ(a.steps.size(), b.steps.size());
  ASSERT_EQ(a.has_kv(), b.has_kv());
  for (size_t s = 0; s < a.steps.size(); ++s) {
    ASSERT_EQ(a.steps[s].y.size(), b.steps[s].y.size());
    for (size_t blk = 0; blk < a.steps[s].y.size(); ++blk) {
      ASSERT_EQ(a.steps[s].y[blk].rows(), b.steps[s].y[blk].rows());
      EXPECT_DOUBLE_EQ(MeanAbsDiff(a.steps[s].y[blk], b.steps[s].y[blk]), 0.0);
    }
    for (size_t blk = 0; blk < a.steps[s].k.size(); ++blk) {
      EXPECT_DOUBLE_EQ(MeanAbsDiff(a.steps[s].k[blk], b.steps[s].k[blk]), 0.0);
      EXPECT_DOUBLE_EQ(MeanAbsDiff(a.steps[s].v[blk], b.steps[s].v[blk]), 0.0);
    }
  }
}

TEST_F(DiskStoreTest, SerializeRoundTrip) {
  const auto record = model_.Register(3);
  const std::string bytes = SerializeRecord(record);
  EXPECT_GT(bytes.size(), record.TotalBytes());  // Payload + headers.
  const auto back = DeserializeRecord(bytes);
  ExpectRecordsEqual(record, back);
}

TEST_F(DiskStoreTest, SerializeRoundTripWithKv) {
  const auto record = model_.Register(3, /*record_kv=*/true);
  const auto back = DeserializeRecord(SerializeRecord(record));
  EXPECT_TRUE(back.has_kv());
  ExpectRecordsEqual(record, back);
}

TEST_F(DiskStoreTest, RejectsCorruptInput) {
  const auto record = model_.Register(1);
  std::string bytes = SerializeRecord(record);
  EXPECT_THROW(DeserializeRecord(bytes.substr(0, 10)), std::runtime_error);
  std::string bad_magic = bytes;
  bad_magic[0] = static_cast<char>(~bad_magic[0]);
  EXPECT_THROW(DeserializeRecord(bad_magic), std::runtime_error);
  std::string trailing = bytes + "junk";
  EXPECT_THROW(DeserializeRecord(trailing), std::runtime_error);
  EXPECT_THROW(DeserializeRecord(""), std::runtime_error);
}

TEST_F(DiskStoreTest, PutGetEvictLifecycle) {
  DiskActivationStore store(dir_);
  EXPECT_FALSE(store.Contains(5));
  EXPECT_FALSE(store.Get(5).has_value());

  const auto record = model_.Register(5);
  const size_t written = store.Put(5, record);
  EXPECT_GT(written, 0u);
  EXPECT_TRUE(store.Contains(5));
  EXPECT_EQ(store.DiskBytes(), written);

  const auto loaded = store.Get(5);
  ASSERT_TRUE(loaded.has_value());
  ExpectRecordsEqual(record, *loaded);

  store.Evict(5);
  EXPECT_FALSE(store.Contains(5));
  EXPECT_EQ(store.DiskBytes(), 0u);
  store.Evict(5);  // Idempotent.
}

TEST_F(DiskStoreTest, MultipleTemplatesCoexist) {
  DiskActivationStore store(dir_);
  const auto a = model_.Register(1);
  const auto b = model_.Register(2);
  store.Put(1, a);
  store.Put(2, b);
  EXPECT_TRUE(store.Contains(1));
  EXPECT_TRUE(store.Contains(2));
  // Records are template-specific.
  const auto back = store.Get(2);
  ASSERT_TRUE(back.has_value());
  EXPECT_GT(MeanAbsDiff(a.steps[0].y[0], back->steps[0].y[0]), 1e-6);
}

TEST_F(DiskStoreTest, SpilledRecordStillServesMaskAwareEdits) {
  // End-to-end through the disk tier: register, spill, drop the in-memory
  // copy, reload, and verify a mask-aware edit matches exact computation.
  DiskActivationStore store(dir_);
  store.Put(7, model_.Register(7));

  const auto loaded = store.Get(7);
  ASSERT_TRUE(loaded.has_value());

  Rng rng(9);
  const auto& config = model_.config();
  const trace::Mask mask =
      trace::GenerateBlobMask(config.grid_h, config.grid_w, 0.2, rng);
  model::DiffusionModel::RunOptions exact;
  const Matrix reference = model_.EditImage(7, mask, 11, exact);

  model::DiffusionModel::RunOptions mask_aware;
  mask_aware.mode = model::ComputeMode::kMaskAwareY;
  mask_aware.cache = &*loaded;
  mask_aware.mask = &mask;
  const Matrix image = model_.EditImage(7, mask, 11, mask_aware);
  EXPECT_LT(MeanAbsDiff(reference, image), 0.08);
}

}  // namespace
}  // namespace flashps::cache
