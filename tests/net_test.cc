// Wire-protocol and TcpServer robustness tests.
//
// The unit half round-trips every frame type and drives the stream
// decoder through each distinct WireError. The server half throws
// garbage, truncation, mid-request disconnects, back-pressure, and
// Stop()-with-in-flight at a live TcpServer and asserts it answers with
// the right distinct error, never hangs, never crashes, and never leaks
// file descriptors.
#include <poll.h>
#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/net/client.h"
#include "src/net/socket_util.h"
#include "src/net/tcp_server.h"
#include "src/net/wire.h"
#include "src/runtime/serde.h"
#include "src/trace/workload.h"

namespace flashps::net {
namespace {

runtime::OnlineRequest MakeRequest(uint64_t seed = 7) {
  Rng rng(seed);
  runtime::OnlineRequest request;
  request.template_id = 3;
  request.prompt_seed = seed;
  request.slo = Duration::Millis(250);
  // The mask grid must be one the server serves: submits route by mask
  // grid, and an unserved grid fails the request.
  const model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  request.mask =
      trace::GenerateBlobMask(numerics.grid_h, numerics.grid_w, 0.2, rng);
  return request;
}

// --- serde ---------------------------------------------------------------

TEST(SerdeTest, OnlineRequestRoundTrip) {
  const runtime::OnlineRequest request = MakeRequest();
  std::vector<uint8_t> bytes;
  runtime::AppendOnlineRequest(request, bytes);

  ByteReader reader(bytes.data(), bytes.size());
  runtime::OnlineRequest decoded;
  std::string error;
  ASSERT_TRUE(runtime::ReadOnlineRequest(reader, &decoded, &error)) << error;
  EXPECT_EQ(decoded.template_id, request.template_id);
  EXPECT_EQ(decoded.prompt_seed, request.prompt_seed);
  EXPECT_EQ(decoded.slo.micros(), request.slo.micros());
  EXPECT_EQ(decoded.mask.grid_h, request.mask.grid_h);
  EXPECT_EQ(decoded.mask.grid_w, request.mask.grid_w);
  EXPECT_EQ(decoded.mask.masked_tokens, request.mask.masked_tokens);
  // The complement is rebuilt, not shipped.
  EXPECT_EQ(decoded.mask.unmasked_tokens, request.mask.unmasked_tokens);
}

// Builds a request payload by hand. `res_h`/`res_w` are the trailing v3
// resolution fields; pass 0,0 to omit them (a v2-layout payload).
std::vector<uint8_t> CraftPayload(int32_t tmpl, int32_t h, int32_t w,
                                  const std::vector<uint32_t>& masked,
                                  int32_t res_h, int32_t res_w) {
  std::vector<uint8_t> bytes;
  ByteWriter writer(bytes);
  writer.I32(tmpl);
  writer.U64(1);  // prompt_seed
  writer.I64(0);  // slo_us
  writer.I32(h);
  writer.I32(w);
  writer.U32(static_cast<uint32_t>(masked.size()));
  for (uint32_t token : masked) writer.U32(token);
  if (res_h != 0 || res_w != 0) {
    writer.I32(res_h);
    writer.I32(res_w);
  }
  return bytes;
}

TEST(SerdeTest, RejectsBadPayloads) {
  const auto decode = [](const std::vector<uint8_t>& bytes) {
    ByteReader reader(bytes.data(), bytes.size());
    runtime::OnlineRequest decoded;
    std::string error;
    return runtime::ReadOnlineRequest(reader, &decoded, &error);
  };
  const auto craft = [](int32_t tmpl, int32_t h, int32_t w,
                        const std::vector<uint32_t>& masked) {
    return CraftPayload(tmpl, h, w, masked, h, w);
  };

  EXPECT_TRUE(decode(craft(0, 4, 4, {0, 5, 15})));
  EXPECT_FALSE(decode(craft(-1, 4, 4, {0})));          // Negative template.
  EXPECT_FALSE(decode(craft(0, 0, 4, {})));            // Degenerate grid.
  EXPECT_FALSE(decode(craft(0, 4, 1000, {})));         // Grid over the cap.
  EXPECT_FALSE(decode(craft(0, 4, 4, {0, 16})));       // Token out of range.
  EXPECT_FALSE(decode(craft(0, 4, 4, {5, 5})));        // Not increasing.
  EXPECT_FALSE(decode(craft(0, 4, 4, {9, 3})));        // Out of order.
  EXPECT_FALSE(decode({0x01, 0x02}));                  // Short input.
  // Resolution fields disagreeing with the mask grid, or missing outright
  // from a payload decoded as v3, are malformed.
  EXPECT_FALSE(decode(CraftPayload(0, 4, 4, {0}, 8, 4)));
  EXPECT_FALSE(decode(CraftPayload(0, 4, 4, {0}, 0, 0)));
}

TEST(SerdeTest, LegacyPayloadWithoutResolutionStillDecodes) {
  // A v2 peer's payload stops after the masked token list; decoding with
  // with_resolution=false accepts it and the resolution IS the mask grid.
  const std::vector<uint8_t> bytes = CraftPayload(3, 4, 4, {1, 6}, 0, 0);
  ByteReader reader(bytes.data(), bytes.size());
  runtime::OnlineRequest decoded;
  std::string error;
  ASSERT_TRUE(runtime::ReadOnlineRequest(reader, &decoded, &error,
                                         /*with_resolution=*/false))
      << error;
  EXPECT_EQ(decoded.mask.grid_h, 4);
  EXPECT_EQ(decoded.mask.grid_w, 4);
  EXPECT_EQ(decoded.mask.masked_tokens, (std::vector<int>{1, 6}));
}

// --- wire frames ---------------------------------------------------------

TEST(WireTest, SubmitRoundTrip) {
  WireRequest request;
  request.engine_mode = 0;
  request.denoise_steps = 12;
  request.request = MakeRequest(11);

  const std::vector<uint8_t> frame = EncodeSubmit(42, request);
  ParsedFrame parsed;
  size_t consumed = 0;
  ASSERT_EQ(TryParseFrame(frame.data(), frame.size(), &parsed, &consumed),
            WireError::kOk);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(parsed.header.seq, 42u);
  EXPECT_EQ(parsed.type(), FrameType::kSubmit);

  WireRequest decoded;
  std::string error;
  ASSERT_TRUE(DecodeSubmit(parsed, &decoded, &error)) << error;
  EXPECT_EQ(decoded.engine_mode, request.engine_mode);
  EXPECT_EQ(decoded.denoise_steps, request.denoise_steps);
  EXPECT_EQ(decoded.request.mask.masked_tokens,
            request.request.mask.masked_tokens);
}

TEST(WireTest, ResponseRoundTrip) {
  WireResponse response;
  response.status = static_cast<uint8_t>(gateway::SubmitStatus::kAccepted);
  response.worker_id = 1;
  response.estimated_wall_us = 1234;
  response.queueing_us = 10;
  response.denoise_us = 20;
  response.post_us = 30;
  response.e2e_us = 60;
  response.latent_checksum = 0xDEADBEEFCAFEF00Dull;

  const std::vector<uint8_t> frame = EncodeSubmitResult(9, response);
  ParsedFrame parsed;
  size_t consumed = 0;
  ASSERT_EQ(TryParseFrame(frame.data(), frame.size(), &parsed, &consumed),
            WireError::kOk);
  WireResponse decoded;
  ASSERT_TRUE(DecodeSubmitResult(parsed, &decoded));
  EXPECT_TRUE(decoded.accepted());
  EXPECT_EQ(decoded.worker_id, 1);
  EXPECT_EQ(decoded.e2e_us, 60);
  EXPECT_EQ(decoded.latent_checksum, response.latent_checksum);
}

TEST(WireTest, ErrorRoundTrip) {
  const std::vector<uint8_t> frame =
      EncodeError(5, WireError::kOversizedFrame, "too big");
  ParsedFrame parsed;
  size_t consumed = 0;
  ASSERT_EQ(TryParseFrame(frame.data(), frame.size(), &parsed, &consumed),
            WireError::kOk);
  WireErrorBody body;
  ASSERT_TRUE(DecodeError(parsed, &body));
  EXPECT_EQ(static_cast<WireError>(body.code), WireError::kOversizedFrame);
  EXPECT_EQ(body.message, "too big");
}

TEST(WireTest, NeedMoreOnPartialFrames) {
  const std::vector<uint8_t> frame = EncodeSubmit(1, WireRequest{});
  ParsedFrame parsed;
  size_t consumed = 0;
  // Every strict prefix wants more bytes; nothing is consumed.
  for (size_t n = 0; n < frame.size(); ++n) {
    EXPECT_EQ(TryParseFrame(frame.data(), n, &parsed, &consumed),
              WireError::kNeedMore)
        << "prefix " << n;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(WireTest, DistinctHeaderErrors) {
  const auto craft = [](uint32_t magic, uint16_t version, uint16_t type,
                        uint32_t len) {
    std::vector<uint8_t> bytes;
    ByteWriter writer(bytes);
    writer.U32(magic);
    writer.U16(version);
    writer.U16(type);
    writer.U64(1);
    writer.U32(len);
    return bytes;
  };
  ParsedFrame parsed;
  size_t consumed = 0;

  // Bad magic is detected from the first 4 bytes alone.
  const std::vector<uint8_t> garbage = {'H', 'T', 'T', 'P'};
  EXPECT_EQ(TryParseFrame(garbage.data(), garbage.size(), &parsed, &consumed),
            WireError::kBadMagic);

  auto bad_version = craft(kWireMagic, 99, 1, 0);
  EXPECT_EQ(
      TryParseFrame(bad_version.data(), bad_version.size(), &parsed,
                    &consumed),
      WireError::kBadVersion);

  auto bad_type = craft(kWireMagic, kWireVersion, 77, 0);
  EXPECT_EQ(TryParseFrame(bad_type.data(), bad_type.size(), &parsed,
                          &consumed),
            WireError::kBadType);

  auto oversized = craft(kWireMagic, kWireVersion, 1, kMaxPayloadBytes + 1);
  EXPECT_EQ(TryParseFrame(oversized.data(), oversized.size(), &parsed,
                          &consumed),
            WireError::kOversizedFrame);
  EXPECT_EQ(consumed, 0u);  // Errors never consume.
}

TEST(WireTest, MalformedSubmitPayloadRejected) {
  ParsedFrame frame;
  frame.header.type = static_cast<uint16_t>(FrameType::kSubmit);
  frame.payload = {0xFF, 0xFF, 0xFF};
  WireRequest decoded;
  std::string error;
  EXPECT_FALSE(DecodeSubmit(frame, &decoded, &error));
  EXPECT_FALSE(error.empty());

  // A valid payload with trailing junk is also malformed.
  WireRequest request;
  request.request = MakeRequest();
  const std::vector<uint8_t> good = EncodeSubmit(1, request);
  ParsedFrame parsed;
  size_t consumed = 0;
  ASSERT_EQ(TryParseFrame(good.data(), good.size(), &parsed, &consumed),
            WireError::kOk);
  parsed.payload.push_back(0x00);
  EXPECT_FALSE(DecodeSubmit(parsed, &decoded, &error));
}

TEST(WireTest, LatentChecksumTracksShapeAndBits) {
  Matrix a(4, 4);
  Matrix b(4, 4);
  EXPECT_EQ(LatentChecksum(a), LatentChecksum(b));
  b.at(2, 3) += 1e-6f;
  EXPECT_NE(LatentChecksum(a), LatentChecksum(b));
  Matrix c(2, 8);  // Same values, different shape.
  EXPECT_NE(LatentChecksum(a), LatentChecksum(c));
}

// --- live server robustness ----------------------------------------------

class TcpServerTest : public ::testing::Test {
 protected:
  static gateway::GatewayOptions FastOptions() {
    gateway::GatewayOptions options;
    options.num_workers = 1;
    options.worker.numerics = model::NumericsConfig::ForTests();
    options.worker.numerics.num_steps = 2;
    options.admission_control = false;
    return options;
  }

  // Reads whatever arrives on a raw socket until `timeout`, EOF, or a full
  // frame; returns the parse result.
  static WireError ReadOneFrame(int fd, ParsedFrame* out,
                                std::chrono::milliseconds timeout =
                                    std::chrono::milliseconds(2000)) {
    std::vector<uint8_t> buf;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      size_t consumed = 0;
      const WireError err =
          TryParseFrame(buf.data(), buf.size(), out, &consumed);
      if (err != WireError::kNeedMore) {
        return err;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        return WireError::kTimeout;
      }
      pollfd pfd{fd, POLLIN, 0};
      const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - now);
      if (::poll(&pfd, 1, static_cast<int>(wait.count())) <= 0) {
        return WireError::kTimeout;
      }
      uint8_t chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        return WireError::kConnectionClosed;
      }
      buf.insert(buf.end(), chunk, chunk + n);
    }
  }

  // True when the peer closes the connection within `timeout`.
  static bool WaitForClose(int fd, std::chrono::milliseconds timeout =
                                       std::chrono::milliseconds(2000)) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        return false;
      }
      pollfd pfd{fd, POLLIN, 0};
      const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - now);
      if (::poll(&pfd, 1, static_cast<int>(wait.count())) <= 0) {
        continue;
      }
      uint8_t chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) {
        return true;
      }
      if (n < 0) {
        return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
      }
      // Discard payload (e.g. the error frame preceding the close).
    }
  }
};

TEST_F(TcpServerTest, GarbageMagicGetsDistinctErrorThenClose) {
  gateway::Gateway gateway(FastOptions());
  TcpServer server(gateway);
  ASSERT_TRUE(server.Start());

  UniqueFd fd = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.valid());
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(SendAll(fd.get(), garbage, sizeof(garbage) - 1));

  ParsedFrame frame;
  ASSERT_EQ(ReadOneFrame(fd.get(), &frame), WireError::kOk);
  ASSERT_EQ(frame.type(), FrameType::kError);
  WireErrorBody body;
  ASSERT_TRUE(DecodeError(frame, &body));
  EXPECT_EQ(static_cast<WireError>(body.code), WireError::kBadMagic);
  EXPECT_TRUE(WaitForClose(fd.get()));
  EXPECT_EQ(server.Stats().bad_magic, 1u);
  server.Stop();
  gateway.Stop();
}

TEST_F(TcpServerTest, BadVersionAndOversizedAreDistinct) {
  gateway::Gateway gateway(FastOptions());
  TcpServer server(gateway);
  ASSERT_TRUE(server.Start());

  const auto probe = [&](uint16_t version, uint16_t type, uint32_t len) {
    std::vector<uint8_t> bytes;
    ByteWriter writer(bytes);
    writer.U32(kWireMagic);
    writer.U16(version);
    writer.U16(type);
    writer.U64(1);
    writer.U32(len);
    UniqueFd fd = ConnectTcp("127.0.0.1", server.port());
    EXPECT_TRUE(fd.valid());
    EXPECT_TRUE(SendAll(fd.get(), bytes.data(), bytes.size()));
    ParsedFrame frame;
    EXPECT_EQ(ReadOneFrame(fd.get(), &frame), WireError::kOk);
    EXPECT_EQ(frame.type(), FrameType::kError);
    WireErrorBody body;
    EXPECT_TRUE(DecodeError(frame, &body));
    EXPECT_TRUE(WaitForClose(fd.get()));
    return static_cast<WireError>(body.code);
  };

  EXPECT_EQ(probe(99, 1, 0), WireError::kBadVersion);
  EXPECT_EQ(probe(kWireVersion, 77, 0), WireError::kBadType);
  EXPECT_EQ(probe(kWireVersion, 1, kMaxPayloadBytes + 1),
            WireError::kOversizedFrame);
  const TcpServerStats stats = server.Stats();
  EXPECT_EQ(stats.bad_version, 1u);
  EXPECT_EQ(stats.bad_type, 1u);
  EXPECT_EQ(stats.oversized, 1u);
  server.Stop();
  gateway.Stop();
}

TEST_F(TcpServerTest, MalformedPayloadRejectedNotCrashed) {
  gateway::Gateway gateway(FastOptions());
  TcpServer server(gateway);
  ASSERT_TRUE(server.Start());

  // Valid header, kSubmit type, garbage payload bytes.
  std::vector<uint8_t> payload(32, 0xFF);
  const std::vector<uint8_t> frame =
      EncodeFrame(FrameType::kSubmit, 1, payload);
  UniqueFd fd = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.valid());
  ASSERT_TRUE(SendAll(fd.get(), frame.data(), frame.size()));
  ParsedFrame reply;
  ASSERT_EQ(ReadOneFrame(fd.get(), &reply), WireError::kOk);
  ASSERT_EQ(reply.type(), FrameType::kError);
  WireErrorBody body;
  ASSERT_TRUE(DecodeError(reply, &body));
  EXPECT_EQ(static_cast<WireError>(body.code), WireError::kMalformedPayload);
  EXPECT_EQ(server.Stats().malformed, 1u);
  server.Stop();
  gateway.Stop();
}

TEST_F(TcpServerTest, TruncatedFrameOnDisconnectIsCounted) {
  gateway::Gateway gateway(FastOptions());
  TcpServer server(gateway);
  ASSERT_TRUE(server.Start());

  WireRequest request;
  request.request = MakeRequest();
  const std::vector<uint8_t> frame = EncodeSubmit(1, request);
  {
    UniqueFd fd = ConnectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(fd.valid());
    // Half a frame, then disconnect.
    ASSERT_TRUE(SendAll(fd.get(), frame.data(), frame.size() / 2));
  }
  // The server must count the truncation and stay healthy for new clients.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (server.Stats().truncated == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.Stats().truncated, 1u);

  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.Connect());
  auto response = client.Call(request, std::chrono::milliseconds(30000));
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->accepted());
  server.Stop();
  gateway.Stop();
}

TEST_F(TcpServerTest, ClientDisconnectMidRequestOrphansCompletion) {
  gateway::Gateway gateway(FastOptions());
  TcpServer server(gateway);
  ASSERT_TRUE(server.Start());

  WireRequest request;
  request.request = MakeRequest();
  const std::vector<uint8_t> frame = EncodeSubmit(1, request);
  {
    UniqueFd fd = ConnectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(fd.valid());
    ASSERT_TRUE(SendAll(fd.get(), frame.data(), frame.size()));
    // Wait until the request is actually in flight, then vanish.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (server.Stats().submits_accepted == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(server.Stats().submits_accepted, 1u);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.Stats().orphaned_completions == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.Stats().orphaned_completions, 1u);
  EXPECT_EQ(server.inflight(), 0u);
  server.Stop();
  gateway.Stop();
}

TEST_F(TcpServerTest, StopWithInflightConnectionsDrains) {
  gateway::Gateway gateway(FastOptions());
  TcpServer server(gateway);
  ASSERT_TRUE(server.Start());

  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.Connect());
  std::vector<uint64_t> seqs;
  for (int i = 0; i < 4; ++i) {
    WireRequest request;
    request.request = MakeRequest(100 + i);
    const uint64_t seq = client.Send(request);
    ASSERT_NE(seq, 0u);
    seqs.push_back(seq);
  }
  // Wait until all four are accepted (draining stops reading, so frames
  // still in the kernel buffer would be dropped, not drained).
  const auto accept_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.Stats().submits_accepted < 4 &&
         std::chrono::steady_clock::now() < accept_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.Stats().submits_accepted, 4u);
  // Stop while requests are in flight: it must return (bounded by
  // drain_timeout) with every accepted request answered.
  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.inflight(), 0u);

  int answered = 0;
  for (uint64_t seq : seqs) {
    client.Pump(std::chrono::milliseconds(50));
    if (client.TryTake(seq)) {
      ++answered;
    }
  }
  // The replies were flushed before the close; all four must have landed.
  EXPECT_EQ(answered, 4);
  gateway.Stop();
}

TEST_F(TcpServerTest, RepeatedConnectDisconnectLeaksNoFds) {
  gateway::Gateway gateway(FastOptions());
  TcpServer server(gateway);
  ASSERT_TRUE(server.Start());

  // Let the server settle, then baseline open fds.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const int baseline = CountOpenFds();
  for (int i = 0; i < 20; ++i) {
    UniqueFd fd = ConnectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(fd.valid());
    if (i % 2 == 0) {
      const char junk[] = "junkjunk";
      SendAll(fd.get(), junk, sizeof(junk) - 1);
    }
  }
  // All 20 server-side fds must be reaped once the peers are gone.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.Stats().connections_closed < 20 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.Stats().connections_closed, 20u);
  EXPECT_EQ(CountOpenFds(), baseline);
  server.Stop();
  gateway.Stop();
}

TEST_F(TcpServerTest, BackpressureStallsInsteadOfQueueingUnbounded) {
  gateway::Gateway gateway(FastOptions());
  TcpServerOptions options;
  options.max_inflight_per_conn = 1;  // Stall after one accepted request.
  TcpServer server(gateway, options);
  ASSERT_TRUE(server.Start());

  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.Connect());
  std::vector<uint64_t> seqs;
  for (int i = 0; i < 4; ++i) {
    WireRequest request;
    request.request = MakeRequest(200 + i);
    const uint64_t seq = client.Send(request);
    ASSERT_NE(seq, 0u);
    seqs.push_back(seq);
  }
  // Every request is still answered (the stall is flow control, not drop).
  for (uint64_t seq : seqs) {
    auto response = client.Await(seq, std::chrono::milliseconds(30000));
    ASSERT_TRUE(response.has_value()) << ToString(client.last_error());
    EXPECT_TRUE(response->accepted());
  }
  EXPECT_GE(server.Stats().backpressure_stalls, 1u);
  server.Stop();
  gateway.Stop();
}

TEST_F(TcpServerTest, ClientReconnectsWithBackoff) {
  // Reserve an ephemeral port, release it, and start the server there only
  // after the client has already begun its backoff retries.
  uint16_t port = 0;
  {
    UniqueFd probe = OpenListener(0, 1, &port);
    ASSERT_TRUE(probe.valid());
  }
  gateway::Gateway gateway(FastOptions());
  TcpServerOptions options;
  options.port = port;
  TcpServer server(gateway, options);

  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ASSERT_TRUE(server.Start());
  });
  ClientOptions client_options;
  client_options.connect_attempts = 8;
  client_options.connect_backoff = std::chrono::milliseconds(40);
  Client client("127.0.0.1", port, client_options);
  EXPECT_TRUE(client.Connect());
  starter.join();

  WireRequest request;
  request.request = MakeRequest();
  auto response = client.Call(request, std::chrono::milliseconds(30000));
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->accepted());
  server.Stop();
  gateway.Stop();
}

TEST_F(TcpServerTest, ConnectFailureAfterAttemptsReportsClosed) {
  uint16_t dead_port = 0;
  {
    UniqueFd probe = OpenListener(0, 1, &dead_port);
    ASSERT_TRUE(probe.valid());
  }
  ClientOptions options;
  options.connect_attempts = 2;
  options.connect_backoff = std::chrono::milliseconds(10);
  Client client("127.0.0.1", dead_port, options);
  EXPECT_FALSE(client.Connect());
  EXPECT_EQ(client.last_error(), WireError::kConnectionClosed);
}

TEST_F(TcpServerTest, AwaitTimesOutWhenServerNeverAnswers) {
  // A bare listener that accepts but never replies.
  uint16_t port = 0;
  UniqueFd listener = OpenListener(0, 4, &port);
  ASSERT_TRUE(listener.valid());

  Client client("127.0.0.1", port);
  ASSERT_TRUE(client.Connect());
  WireRequest request;
  request.request = MakeRequest();
  const uint64_t seq = client.Send(request);
  ASSERT_NE(seq, 0u);
  auto response = client.Await(seq, std::chrono::milliseconds(120));
  EXPECT_FALSE(response.has_value());
  EXPECT_EQ(client.last_error(), WireError::kTimeout);
}

}  // namespace
}  // namespace flashps::net
