#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "src/common/concurrent_queue.h"
#include "src/common/thread_pool.h"
#include "src/quality/metrics.h"
#include "src/runtime/online_server.h"

namespace flashps::runtime {
namespace {

TEST(ConcurrentQueueTest, FifoOrder) {
  ConcurrentQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.TryPop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(ConcurrentQueueTest, CloseDrainsThenReturnsNullopt) {
  ConcurrentQueue<int> q;
  q.Push(7);
  q.Close();
  EXPECT_FALSE(q.Push(8));
  EXPECT_EQ(*q.Pop(), 7);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(ConcurrentQueueTest, DrainUpTo) {
  ConcurrentQueue<int> q;
  for (int i = 0; i < 5; ++i) {
    q.Push(i);
  }
  const auto batch = q.DrainUpTo(3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], 0);
  EXPECT_EQ(batch[2], 2);
  EXPECT_EQ(q.size(), 2u);
}

TEST(ConcurrentQueueTest, CrossThreadHandoff) {
  ConcurrentQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) {
      q.Push(i);
    }
    q.Close();
  });
  int count = 0;
  int last = -1;
  while (auto v = q.Pop()) {
    EXPECT_EQ(*v, last + 1);
    last = *v;
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, 100);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
    }
    pool.Shutdown();
    EXPECT_EQ(pool.completed(), 50u);
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
  pool.Shutdown();  // Idempotent.
}

class OnlineServerTest : public ::testing::Test {
 protected:
  static OnlineRequest MakeRequest(const model::NumericsConfig& numerics,
                                   int i, Rng& rng) {
    OnlineRequest r;
    r.template_id = i % 3;
    r.mask = trace::GenerateBlobMask(numerics.grid_h, numerics.grid_w,
                                     0.15 + 0.2 * rng.NextDouble(), rng);
    r.prompt_seed = 900 + i;
    return r;
  }
};

TEST_F(OnlineServerTest, ServesRequestsEndToEnd) {
  OnlineServer::Options options;
  options.max_batch = 3;
  OnlineServer server(options);
  Rng rng(1);

  std::vector<std::future<OnlineResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(
        server.Submit(MakeRequest(options.numerics, i, rng)));
  }
  std::set<uint64_t> ids;
  for (auto& f : futures) {
    OnlineResponse r = f.get();
    EXPECT_TRUE(ids.insert(r.id).second);
    EXPECT_EQ(r.image.rows(), options.numerics.image_h());
    EXPECT_GE(r.total_ms(), 0.0);
    EXPECT_LE(r.submitted, r.admitted);
    EXPECT_LE(r.admitted, r.denoise_done);
    EXPECT_LE(r.denoise_done, r.completed);
  }
  server.Stop();
  EXPECT_EQ(server.completed_count(), 6u);
}

TEST_F(OnlineServerTest, MaskAwareOutputMatchesOfflineEngine) {
  OnlineServer::Options options;
  OnlineServer server(options);
  Rng rng(2);
  OnlineRequest request = MakeRequest(options.numerics, 1, rng);
  const OnlineRequest copy = request;
  OnlineResponse response = server.Submit(std::move(request)).get();
  server.Stop();

  // The offline engine with the same inputs must produce the same image.
  const model::DiffusionModel& m = server.model();
  cache::ActivationStore store;
  model::DiffusionModel::RunOptions opts;
  opts.mode = model::ComputeMode::kMaskAwareY;
  opts.cache = &store.GetOrRegister(m, copy.template_id);
  opts.mask = &copy.mask;
  const Matrix offline =
      m.EditImage(copy.template_id, copy.mask, copy.prompt_seed, opts);
  EXPECT_DOUBLE_EQ(MeanAbsDiff(response.image, offline), 0.0);
}

TEST_F(OnlineServerTest, NonDisaggregatedAndFullComputeModes) {
  OnlineServer::Options options;
  options.disaggregate = false;
  options.mask_aware = false;
  OnlineServer server(options);
  Rng rng(3);
  auto f1 = server.Submit(MakeRequest(options.numerics, 0, rng));
  auto f2 = server.Submit(MakeRequest(options.numerics, 1, rng));
  EXPECT_GT(f1.get().image.rows(), 0);
  EXPECT_GT(f2.get().image.rows(), 0);
  server.Stop();
  EXPECT_EQ(server.completed_count(), 2u);
}

TEST_F(OnlineServerTest, StopWithoutRequestsIsClean) {
  OnlineServer::Options options;
  OnlineServer server(options);
  server.Stop();
  EXPECT_EQ(server.completed_count(), 0u);
}

TEST_F(OnlineServerTest, SubmitAfterStopThrows) {
  OnlineServer::Options options;
  OnlineServer server(options);
  server.Stop();
  Rng rng(4);
  EXPECT_THROW(server.Submit(MakeRequest(options.numerics, 0, rng)),
               std::runtime_error);
}

TEST_F(OnlineServerTest, StopWithInFlightSubmissionsResolvesAllFutures) {
  OnlineServer::Options options;
  options.max_batch = 2;
  OnlineServer server(options);
  Rng rng(6);
  std::vector<std::future<OnlineResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.Submit(MakeRequest(options.numerics, i, rng)));
  }
  // Stop with everything still in flight: it must wait for all accepted
  // requests, and every future must resolve (no broken promises).
  server.Stop();
  for (auto& f : futures) {
    EXPECT_NO_THROW(f.get());
  }
  EXPECT_EQ(server.completed_count(), 8u);
}

TEST_F(OnlineServerTest, ConcurrentSubmitAndStopNeverLosesARequest) {
  OnlineServer::Options options;
  options.max_batch = 2;
  OnlineServer server(options);
  Rng rng(7);

  std::vector<std::future<OnlineResponse>> futures;
  std::atomic<bool> go{false};
  std::atomic<int> rejected_at_submit{0};
  std::thread submitter([&] {
    Rng thread_rng(8);
    while (!go.load()) {
    }
    for (int i = 0; i < 32; ++i) {
      try {
        auto f = server.Submit(MakeRequest(options.numerics, i, thread_rng));
        futures.push_back(std::move(f));
      } catch (const std::runtime_error&) {
        rejected_at_submit.fetch_add(1);  // Submit after Stop() observed it.
      }
    }
  });
  go.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.Stop();
  submitter.join();

  // Every future the submitter received resolves with a value or an explicit
  // shutdown error — never a silent drop or a broken promise.
  int resolved = 0;
  int failed = 0;
  for (auto& f : futures) {
    try {
      f.get();
      ++resolved;
    } catch (const std::runtime_error&) {
      ++failed;
    }
  }
  EXPECT_EQ(resolved + failed + rejected_at_submit.load(), 32);
  EXPECT_EQ(server.completed_count(), futures.size());
}

TEST_F(OnlineServerTest, SnapshotTracksOutstandingWork) {
  OnlineServer::Options options;
  options.max_batch = 2;
  options.numerics.num_steps = 16;
  OnlineServer server(options);
  Rng rng(9);

  std::vector<std::future<OnlineResponse>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.Submit(MakeRequest(options.numerics, i, rng)));
  }

  // While requests are in flight, some snapshot must show outstanding work,
  // with invariants: running <= max_batch, remaining steps bounded by
  // outstanding * num_steps.
  bool saw_load = false;
  for (int poll = 0; poll < 2000 && !saw_load; ++poll) {
    const BatchSnapshot snap = server.Snapshot();
    EXPECT_LE(snap.running_ratios.size(), 2u);
    EXPECT_LE(snap.remaining_steps,
              static_cast<int64_t>(snap.running_ratios.size() +
                                   snap.waiting_ratios.size()) *
                  options.numerics.num_steps);
    for (const double r : snap.running_ratios) {
      EXPECT_GT(r, 0.0);
      EXPECT_LT(r, 1.0);
    }
    if (snap.remaining_steps > 0) {
      saw_load = true;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_TRUE(saw_load);
  EXPECT_EQ(server.Snapshot().max_batch, 2);

  for (auto& f : futures) {
    f.get();
  }
  server.Stop();
  // Drained: the snapshot is empty again.
  const BatchSnapshot snap = server.Snapshot();
  EXPECT_TRUE(snap.running_ratios.empty());
  EXPECT_TRUE(snap.waiting_ratios.empty());
  EXPECT_EQ(snap.remaining_steps, 0);
  EXPECT_TRUE(snap.has_slack());
}

TEST_F(OnlineServerTest, DeadlinePlumbsThroughToResponse) {
  OnlineServer::Options options;
  OnlineServer server(options);
  Rng rng(10);

  OnlineRequest with_deadline = MakeRequest(options.numerics, 0, rng);
  with_deadline.deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  OnlineRequest without_deadline = MakeRequest(options.numerics, 1, rng);

  auto f1 = server.Submit(std::move(with_deadline));
  auto f2 = server.Submit(std::move(without_deadline));
  const OnlineResponse r1 = f1.get();
  const OnlineResponse r2 = f2.get();
  server.Stop();

  EXPECT_TRUE(r1.has_deadline());
  EXPECT_TRUE(r1.met_deadline());  // An hour is plenty.
  EXPECT_FALSE(r2.has_deadline());
  EXPECT_TRUE(r2.met_deadline());  // max() deadline is never missed.
  EXPECT_GE(r1.denoise_ms(), 0.0);
  EXPECT_GE(r1.post_ms(), 0.0);
}

TEST_F(OnlineServerTest, ContinuousBatchingInterleavesRequests) {
  // A request submitted while another is in flight must be admitted before
  // the first finishes (step-level join): its admission time precedes the
  // first request's denoise_done.
  OnlineServer::Options options;
  options.max_batch = 2;
  options.numerics.num_steps = 12;  // Long enough to observe interleaving.
  OnlineServer server(options);
  Rng rng(5);

  auto f1 = server.Submit(MakeRequest(options.numerics, 0, rng));
  // Give the first request a head start, then submit the second.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto f2 = server.Submit(MakeRequest(options.numerics, 1, rng));

  const OnlineResponse r1 = f1.get();
  const OnlineResponse r2 = f2.get();
  EXPECT_LT(r2.admitted, r1.denoise_done)
      << "second request should join the running batch mid-flight";
  server.Stop();
}

TEST_F(OnlineServerTest, ComputeThreadsProduceIdenticalImages) {
  // The parallel kernels are bitwise thread-count-invariant, so the denoise
  // output must not depend on the intra-op budget.
  Matrix images[2];
  const int thread_counts[2] = {1, 4};
  for (int variant = 0; variant < 2; ++variant) {
    OnlineServer::Options options;
    options.compute_threads = thread_counts[variant];
    OnlineServer server(options);
    Rng rng(9);
    OnlineResponse r =
        server.Submit(MakeRequest(options.numerics, 2, rng)).get();
    images[variant] = std::move(r.image);
    server.Stop();
  }
  ASSERT_EQ(images[0].rows(), images[1].rows());
  EXPECT_EQ(MeanAbsDiff(images[0], images[1]), 0.0);
}

TEST_F(OnlineServerTest, HybridResolutionRequestsRouteByMaskGrid) {
  OnlineServer::Options options;
  options.sparse_compute = true;
  options.extra_resolutions = {{8, 8}, {16, 12}};
  OnlineServer server(options);
  Rng rng(11);

  // One request per served grid, decoded image sized by its own grid.
  const std::vector<std::pair<int, int>> grids = {
      {options.numerics.grid_h, options.numerics.grid_w}, {8, 8}, {16, 12}};
  std::vector<std::future<OnlineResponse>> futures;
  for (size_t i = 0; i < grids.size(); ++i) {
    OnlineRequest r;
    r.template_id = static_cast<int>(i) % 3;
    r.mask = trace::GenerateBlobMask(grids[i].first, grids[i].second, 0.3, rng);
    r.prompt_seed = 700 + i;
    futures.push_back(server.Submit(std::move(r)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const OnlineResponse r = futures[i].get();
    EXPECT_EQ(r.image.rows(), grids[i].first * options.numerics.patch);
    EXPECT_EQ(r.image.cols(), grids[i].second * options.numerics.patch);
  }
  server.Stop();
  EXPECT_EQ(server.completed_count(), grids.size());
}

TEST_F(OnlineServerTest, UnsupportedGridFailsTheFutureNotTheServer) {
  OnlineServer::Options options;
  options.extra_resolutions = {{8, 8}};
  OnlineServer server(options);
  Rng rng(12);

  OnlineRequest bad;
  bad.template_id = 0;
  bad.mask = trace::GenerateBlobMask(5, 5, 0.3, rng);
  bad.prompt_seed = 1;
  auto failed = server.Submit(std::move(bad));
  EXPECT_THROW(failed.get(), std::runtime_error);

  // The server stays healthy for supported grids.
  OnlineResponse ok = server.Submit(MakeRequest(options.numerics, 0, rng)).get();
  EXPECT_EQ(ok.image.rows(), options.numerics.image_h());
  server.Stop();
}

TEST_F(OnlineServerTest, PatchBatchingMatchesSerializedBaselineBitwise) {
  // The gathered cross-resolution step panel must not change any output:
  // a patch-batching server and a serialize-per-resolution server given
  // the same mixed-resolution submissions produce identical images.
  std::vector<Matrix> images[2];
  const bool batching[2] = {true, false};
  for (int variant = 0; variant < 2; ++variant) {
    OnlineServer::Options options;
    options.sparse_compute = true;
    options.patch_batching = batching[variant];
    options.extra_resolutions = {{8, 8}, {16, 12}};
    options.max_batch = 4;
    OnlineServer server(options);
    Rng rng(13);
    const std::vector<std::pair<int, int>> grids = {
        {options.numerics.grid_h, options.numerics.grid_w},
        {8, 8},
        {16, 12},
        {8, 8}};
    std::vector<std::future<OnlineResponse>> futures;
    for (size_t i = 0; i < grids.size(); ++i) {
      OnlineRequest r;
      r.template_id = static_cast<int>(i) % 3;
      r.mask =
          trace::GenerateBlobMask(grids[i].first, grids[i].second, 0.25, rng);
      r.prompt_seed = 50 + i;
      futures.push_back(server.Submit(std::move(r)));
    }
    for (auto& f : futures) {
      images[variant].push_back(f.get().image);
    }
    server.Stop();
  }
  ASSERT_EQ(images[0].size(), images[1].size());
  for (size_t i = 0; i < images[0].size(); ++i) {
    ASSERT_EQ(images[0][i].rows(), images[1][i].rows()) << i;
    EXPECT_EQ(MeanAbsDiff(images[0][i], images[1][i]), 0.0) << i;
  }
}

}  // namespace
}  // namespace flashps::runtime
