#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "src/quality/metrics.h"
#include "src/runtime/concurrent_queue.h"
#include "src/runtime/online_server.h"
#include "src/runtime/thread_pool.h"

namespace flashps::runtime {
namespace {

TEST(ConcurrentQueueTest, FifoOrder) {
  ConcurrentQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.TryPop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(ConcurrentQueueTest, CloseDrainsThenReturnsNullopt) {
  ConcurrentQueue<int> q;
  q.Push(7);
  q.Close();
  EXPECT_FALSE(q.Push(8));
  EXPECT_EQ(*q.Pop(), 7);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(ConcurrentQueueTest, DrainUpTo) {
  ConcurrentQueue<int> q;
  for (int i = 0; i < 5; ++i) {
    q.Push(i);
  }
  const auto batch = q.DrainUpTo(3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], 0);
  EXPECT_EQ(batch[2], 2);
  EXPECT_EQ(q.size(), 2u);
}

TEST(ConcurrentQueueTest, CrossThreadHandoff) {
  ConcurrentQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) {
      q.Push(i);
    }
    q.Close();
  });
  int count = 0;
  int last = -1;
  while (auto v = q.Pop()) {
    EXPECT_EQ(*v, last + 1);
    last = *v;
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, 100);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
    }
    pool.Shutdown();
    EXPECT_EQ(pool.completed(), 50u);
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
  pool.Shutdown();  // Idempotent.
}

class OnlineServerTest : public ::testing::Test {
 protected:
  static OnlineRequest MakeRequest(const model::NumericsConfig& numerics,
                                   int i, Rng& rng) {
    OnlineRequest r;
    r.template_id = i % 3;
    r.mask = trace::GenerateBlobMask(numerics.grid_h, numerics.grid_w,
                                     0.15 + 0.2 * rng.NextDouble(), rng);
    r.prompt_seed = 900 + i;
    return r;
  }
};

TEST_F(OnlineServerTest, ServesRequestsEndToEnd) {
  OnlineServer::Options options;
  options.max_batch = 3;
  OnlineServer server(options);
  Rng rng(1);

  std::vector<std::future<OnlineResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(
        server.Submit(MakeRequest(options.numerics, i, rng)));
  }
  std::set<uint64_t> ids;
  for (auto& f : futures) {
    OnlineResponse r = f.get();
    EXPECT_TRUE(ids.insert(r.id).second);
    EXPECT_EQ(r.image.rows(), options.numerics.image_h());
    EXPECT_GE(r.total_ms(), 0.0);
    EXPECT_LE(r.submitted, r.admitted);
    EXPECT_LE(r.admitted, r.denoise_done);
    EXPECT_LE(r.denoise_done, r.completed);
  }
  server.Stop();
  EXPECT_EQ(server.completed_count(), 6u);
}

TEST_F(OnlineServerTest, MaskAwareOutputMatchesOfflineEngine) {
  OnlineServer::Options options;
  OnlineServer server(options);
  Rng rng(2);
  OnlineRequest request = MakeRequest(options.numerics, 1, rng);
  const OnlineRequest copy = request;
  OnlineResponse response = server.Submit(std::move(request)).get();
  server.Stop();

  // The offline engine with the same inputs must produce the same image.
  const model::DiffusionModel& m = server.model();
  cache::ActivationStore store;
  model::DiffusionModel::RunOptions opts;
  opts.mode = model::ComputeMode::kMaskAwareY;
  opts.cache = &store.GetOrRegister(m, copy.template_id);
  opts.mask = &copy.mask;
  const Matrix offline =
      m.EditImage(copy.template_id, copy.mask, copy.prompt_seed, opts);
  EXPECT_DOUBLE_EQ(MeanAbsDiff(response.image, offline), 0.0);
}

TEST_F(OnlineServerTest, NonDisaggregatedAndFullComputeModes) {
  OnlineServer::Options options;
  options.disaggregate = false;
  options.mask_aware = false;
  OnlineServer server(options);
  Rng rng(3);
  auto f1 = server.Submit(MakeRequest(options.numerics, 0, rng));
  auto f2 = server.Submit(MakeRequest(options.numerics, 1, rng));
  EXPECT_GT(f1.get().image.rows(), 0);
  EXPECT_GT(f2.get().image.rows(), 0);
  server.Stop();
  EXPECT_EQ(server.completed_count(), 2u);
}

TEST_F(OnlineServerTest, StopWithoutRequestsIsClean) {
  OnlineServer::Options options;
  OnlineServer server(options);
  server.Stop();
  EXPECT_EQ(server.completed_count(), 0u);
}

TEST_F(OnlineServerTest, SubmitAfterStopThrows) {
  OnlineServer::Options options;
  OnlineServer server(options);
  server.Stop();
  Rng rng(4);
  EXPECT_THROW(server.Submit(MakeRequest(options.numerics, 0, rng)),
               std::runtime_error);
}

TEST_F(OnlineServerTest, ContinuousBatchingInterleavesRequests) {
  // A request submitted while another is in flight must be admitted before
  // the first finishes (step-level join): its admission time precedes the
  // first request's denoise_done.
  OnlineServer::Options options;
  options.max_batch = 2;
  options.numerics.num_steps = 12;  // Long enough to observe interleaving.
  OnlineServer server(options);
  Rng rng(5);

  auto f1 = server.Submit(MakeRequest(options.numerics, 0, rng));
  // Give the first request a head start, then submit the second.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto f2 = server.Submit(MakeRequest(options.numerics, 1, rng));

  const OnlineResponse r1 = f1.get();
  const OnlineResponse r2 = f2.get();
  EXPECT_LT(r2.admitted, r1.denoise_done)
      << "second request should join the running batch mid-flight";
  server.Stop();
}

}  // namespace
}  // namespace flashps::runtime
