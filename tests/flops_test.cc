#include <gtest/gtest.h>

#include "src/model/flops.h"
#include "src/model/timing.h"

namespace flashps::model {
namespace {

TEST(FlopsTest, FullBlockBreakdown) {
  // L=10, H=4: proj 8*10*16=1280, attn 4*100*4=1600, ff 16*10*16=2560.
  EXPECT_DOUBLE_EQ(FlopsFullBlock(10, 4), 1280 + 1600 + 2560);
  EXPECT_DOUBLE_EQ(FlopsFullBlock(10, 4, 2.0), 2.0 * (1280 + 1600 + 2560));
}

TEST(FlopsTest, Table1TokenWiseOpsScaleAs1OverM) {
  // Table 1: feed-forward and projections accelerate by exactly 1/m under
  // KV caching (all token-wise ops run on masked tokens only).
  const double l = 4096;
  const double h = 1280;
  for (const double m : {0.1, 0.2, 0.5}) {
    EXPECT_NEAR(FlopsKvCacheBlock(l, h, m) / FlopsKvCacheBlock(l, h, 1.0), m,
                1e-12);
  }
  // m = 1 recovers the full cost.
  EXPECT_NEAR(FlopsKvCacheBlock(l, h, 1.0), FlopsFullBlock(l, h), 1e-6);
}

TEST(FlopsTest, YCacheCostsMoreThanKvCacheButLoadsLess) {
  // The Y-caching flow recomputes K/V for all tokens, so it does strictly
  // more FLOPs than the KV alternative, but loads half the bytes (§3.1).
  const double l = 1024;
  const double h = 640;
  for (const double m : {0.05, 0.2, 0.5}) {
    EXPECT_GT(FlopsYCacheBlock(l, h, m), FlopsKvCacheBlock(l, h, m));
    EXPECT_LT(FlopsYCacheBlock(l, h, m), FlopsFullBlock(l, h));
    EXPECT_EQ(KvCacheLoadBytes(1024, 640, m, 2),
              2 * YCacheLoadBytes(1024, 640, m, 2));
  }
}

TEST(FlopsTest, SparseAttentionScalesAsMSquared) {
  // FISEdit attention spans only masked tokens: quadratic in m.
  const double l = 2048;
  const double h = 8;  // Tiny hidden so attention dominates.
  const double r_small = FlopsSparseBlock(l, h, 0.1);
  const double r_double = FlopsSparseBlock(l, h, 0.2);
  // Attention part quadruples; projections double. Ratio lies in (2, 4).
  EXPECT_GT(r_double / r_small, 2.0);
  EXPECT_LT(r_double / r_small, 4.0);
}

TEST(FlopsTest, CacheShapesMatchTable1) {
  // Cache loaded per block: (1-m)*L rows of H at bytes_per_elem.
  EXPECT_EQ(YCacheLoadBytes(1000, 64, 0.2, 2), 800u * 64u * 2u);
  EXPECT_EQ(YCacheStoreBytes(1000, 64, 2), 1000u * 64u * 2u);
  EXPECT_EQ(YCacheLoadBytes(1000, 64, 1.0, 2), 0u);
}

TEST(TimingConfigTest, SdxlAnchorsMatchPaper) {
  const TimingConfig sdxl = TimingConfig::Get(ModelKind::kSdxl);
  // §1: ~676 TFLOPs to generate a 1024x1024 SDXL image. Our accounting
  // should land within 2x of it (same order).
  const double total =
      (sdxl.TfFlopsPerStepFull() + sdxl.NonTfFlopsPerStep()) *
      sdxl.denoise_steps;
  EXPECT_GT(total, 300e12);
  EXPECT_LT(total, 800e12);
  // §4.2: ~2.6 GiB cached activations per SDXL template.
  const double gib = static_cast<double>(sdxl.TemplateCacheStoreBytes()) /
                     static_cast<double>(1ULL << 30);
  EXPECT_NEAR(gib, 2.6, 0.4);
}

TEST(TimingConfigTest, KvCacheDoublesStoreBytes) {
  const TimingConfig c = TimingConfig::Get(ModelKind::kSdxl);
  EXPECT_EQ(c.TemplateCacheStoreBytes(ComputeMode::kMaskAwareKV),
            2 * c.TemplateCacheStoreBytes(ComputeMode::kMaskAwareY));
}

TEST(BuildStepWorkloadTest, FullModeHasNoLoads) {
  const TimingConfig c = TimingConfig::Get(ModelKind::kSdxl);
  const double ratios[] = {0.2, 0.4};
  const StepWorkload w = BuildStepWorkload(c, ratios, ComputeMode::kFull);
  ASSERT_EQ(static_cast<int>(w.blocks.size()), c.num_groups);
  for (const auto& b : w.blocks) {
    EXPECT_EQ(b.load_bytes, 0u);
    EXPECT_DOUBLE_EQ(b.flops_with_cache, b.flops_without_cache);
  }
}

TEST(BuildStepWorkloadTest, MaskAwareBatchesAreAdditive) {
  const TimingConfig c = TimingConfig::Get(ModelKind::kFlux);
  const double one[] = {0.3};
  const double two[] = {0.3, 0.3};
  const StepWorkload w1 = BuildStepWorkload(c, one, ComputeMode::kMaskAwareY);
  const StepWorkload w2 = BuildStepWorkload(c, two, ComputeMode::kMaskAwareY);
  EXPECT_NEAR(w2.blocks[0].flops_with_cache,
              2.0 * w1.blocks[0].flops_with_cache, 1.0);
  EXPECT_EQ(w2.blocks[0].load_bytes, 2 * w1.blocks[0].load_bytes);
  EXPECT_NEAR(w2.non_tf_flops, 2.0 * w1.non_tf_flops, 1.0);
}

TEST(BuildStepWorkloadTest, SmallerMaskMeansLessComputeMoreLoad) {
  const TimingConfig c = TimingConfig::Get(ModelKind::kSdxl);
  const double small[] = {0.05};
  const double large[] = {0.5};
  const auto ws = BuildStepWorkload(c, small, ComputeMode::kMaskAwareY);
  const auto wl = BuildStepWorkload(c, large, ComputeMode::kMaskAwareY);
  EXPECT_LT(ws.blocks[0].flops_with_cache, wl.blocks[0].flops_with_cache);
  EXPECT_GT(ws.blocks[0].load_bytes, wl.blocks[0].load_bytes);
}

TEST(UtilizedComputeLatencyTest, FewTokensRunLessEfficiently) {
  const TimingConfig c = TimingConfig::Get(ModelKind::kSdxl);
  const auto spec = device::DeviceSpec::Get(c.gpu);
  const Duration many = UtilizedComputeLatency(spec, c, 1e12, 4096);
  const Duration few = UtilizedComputeLatency(spec, c, 1e12, 64);
  EXPECT_GT(few, many);  // Same FLOPs, fewer tokens => lower SM utilization.
}

TEST(ComputeStepDurationsTest, VectorsAlignWithBlocks) {
  const TimingConfig c = TimingConfig::Get(ModelKind::kFlux);
  const auto spec = device::DeviceSpec::Get(c.gpu);
  const double ratios[] = {0.15};
  const auto w = BuildStepWorkload(c, ratios, ComputeMode::kMaskAwareY);
  const auto d = ComputeStepDurations(c, spec, w);
  ASSERT_EQ(d.compute_with_cache.size(), w.blocks.size());
  ASSERT_EQ(d.load.size(), w.blocks.size());
  for (size_t i = 0; i < w.blocks.size(); ++i) {
    EXPECT_LT(d.compute_with_cache[i], d.compute_without_cache[i]);
    EXPECT_GT(d.load[i], Duration::Zero());
  }
}

TEST(MultiResolutionGroupsTest, EffectiveGroupsDefaultsToUniform) {
  const TimingConfig c = TimingConfig::Get(ModelKind::kSdxl);
  const auto groups = c.EffectiveGroups();
  ASSERT_EQ(static_cast<int>(groups.size()), c.num_groups);
  for (const auto& g : groups) {
    EXPECT_EQ(g.tokens, c.tokens);
    EXPECT_EQ(g.hidden, c.hidden);
    EXPECT_DOUBLE_EQ(g.layers, c.layers_per_group);
  }
}

TEST(MultiResolutionGroupsTest, MixedResolutionAccounting) {
  // A UNet-like config: a few high-resolution groups (many tokens, narrow)
  // plus many low-resolution groups (fewer tokens, wide).
  TimingConfig c = TimingConfig::Get(ModelKind::kSdxl);
  c.groups = {GroupDims{4096, 640, 1.0}, GroupDims{4096, 640, 1.0},
              GroupDims{1024, 1280, 3.0}, GroupDims{1024, 1280, 3.0},
              GroupDims{1024, 1280, 3.0}};
  const double expected =
      c.cfg_factor * (2.0 * FlopsFullBlock(4096, 640, 1.0) +
                      3.0 * FlopsFullBlock(1024, 1280, 3.0));
  EXPECT_NEAR(c.TfFlopsPerStepFull(), expected, 1.0);

  const uint64_t expected_cache =
      (2 * YCacheStoreBytes(4096, 640, 2) + 3 * YCacheStoreBytes(1024, 1280, 2)) *
      static_cast<uint64_t>(c.denoise_steps);
  EXPECT_EQ(c.TemplateCacheStoreBytes(), expected_cache);

  const double ratios[] = {0.2};
  const auto w = BuildStepWorkload(c, ratios, ComputeMode::kMaskAwareY);
  ASSERT_EQ(w.blocks.size(), 5u);
  // High-res groups load more bytes than low-res ones at equal m.
  EXPECT_GT(w.blocks[0].load_bytes, w.blocks[2].load_bytes);
  // And their per-group compute reflects their own dimensions.
  EXPECT_NE(w.blocks[0].flops_with_cache, w.blocks[2].flops_with_cache);
}

TEST(MultiResolutionGroupsTest, DurationsFollowGroupDims) {
  TimingConfig c = TimingConfig::Get(ModelKind::kFlux);
  c.groups = {GroupDims{4096, 2048, 1.0}, GroupDims{1024, 2048, 1.0}};
  const auto spec = device::DeviceSpec::Get(c.gpu);
  const double ratios[] = {0.3};
  const auto w = BuildStepWorkload(c, ratios, ComputeMode::kMaskAwareY);
  const auto d = ComputeStepDurations(c, spec, w);
  ASSERT_EQ(d.compute_with_cache.size(), 2u);
  EXPECT_GT(d.compute_with_cache[0], d.compute_with_cache[1]);
  EXPECT_GT(d.load[0], d.load[1]);
}

}  // namespace
}  // namespace flashps::model
