#include <gtest/gtest.h>

#include "src/trace/auto_mask.h"

namespace flashps::trace {
namespace {

// A flat image with one bright rectangle (the "face" to be restored).
Matrix ImageWithBlob(int h, int w, int r0, int c0, int bh, int bw,
                     float bg = 0.2f, float fg = 0.95f) {
  Matrix img(h, w);
  img.FillConstant(bg);
  for (int r = r0; r < r0 + bh; ++r) {
    for (int c = c0; c < c0 + bw; ++c) {
      img.at(r, c) = fg;
    }
  }
  return img;
}

TEST(DetectSalientRegionTest, FindsBrightBlob) {
  const Matrix img = ImageWithBlob(32, 32, 8, 10, 6, 8);
  AutoMaskOptions options;
  const Matrix detected = DetectSalientRegion(img, options);
  EXPECT_EQ(detected.at(10, 12), 1.0f);  // Inside the blob.
  EXPECT_EQ(detected.at(0, 0), 0.0f);    // Background.
}

TEST(LargestConnectedComponentTest, KeepsOnlyTheBiggest) {
  Matrix binary(8, 8);
  // Big component: 2x3 block. Small component: single pixel far away.
  for (int r = 1; r <= 2; ++r) {
    for (int c = 1; c <= 3; ++c) {
      binary.at(r, c) = 1.0f;
    }
  }
  binary.at(6, 6) = 1.0f;
  const Matrix out = LargestConnectedComponent(binary);
  EXPECT_EQ(out.at(1, 1), 1.0f);
  EXPECT_EQ(out.at(2, 3), 1.0f);
  EXPECT_EQ(out.at(6, 6), 0.0f);  // The singleton is dropped.
}

TEST(LargestConnectedComponentTest, EmptyInputEmptyOutput) {
  Matrix binary(4, 4);
  const Matrix out = LargestConnectedComponent(binary);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.data()[i], 0.0f);
  }
}

TEST(LargestConnectedComponentTest, DiagonalPixelsAreSeparate) {
  // 4-connectivity: diagonal neighbours are different components.
  Matrix binary(4, 4);
  binary.at(0, 0) = 1.0f;
  binary.at(1, 1) = 1.0f;
  binary.at(1, 2) = 1.0f;  // Makes {.at(1,1),(1,2)} the larger component.
  const Matrix out = LargestConnectedComponent(binary);
  EXPECT_EQ(out.at(0, 0), 0.0f);
  EXPECT_EQ(out.at(1, 1), 1.0f);
  EXPECT_EQ(out.at(1, 2), 1.0f);
}

TEST(DilateTest, GrowsByRadius) {
  Matrix binary(7, 7);
  binary.at(3, 3) = 1.0f;
  const Matrix grown = Dilate(binary, 1);
  for (int r = 2; r <= 4; ++r) {
    for (int c = 2; c <= 4; ++c) {
      EXPECT_EQ(grown.at(r, c), 1.0f);
    }
  }
  EXPECT_EQ(grown.at(0, 0), 0.0f);
  EXPECT_EQ(grown.at(3, 5), 0.0f);
  // Radius 0 is the identity.
  const Matrix same = Dilate(binary, 0);
  EXPECT_EQ(same.at(3, 3), 1.0f);
  EXPECT_EQ(same.at(3, 4), 0.0f);
}

TEST(GenerateAutoMaskTest, MaskCoversTheBlobTokens) {
  // Blob occupies pixel rows 8..15, cols 12..19 -> tokens rows 2..3,
  // cols 3..4 at patch 4.
  const Matrix img = ImageWithBlob(48, 48, 8, 12, 8, 8);
  AutoMaskOptions options;
  options.dilation = 0;
  const Mask mask = GenerateAutoMask(img, options);
  EXPECT_EQ(mask.grid_h, 12);
  EXPECT_EQ(mask.grid_w, 12);
  std::set<int> masked(mask.masked_tokens.begin(), mask.masked_tokens.end());
  for (int tr = 2; tr <= 3; ++tr) {
    for (int tc = 3; tc <= 4; ++tc) {
      EXPECT_TRUE(masked.count(tr * 12 + tc)) << tr << "," << tc;
    }
  }
  // Distant background tokens remain unmasked.
  EXPECT_FALSE(masked.count(0));
  EXPECT_FALSE(masked.count(11 * 12 + 11));
  // Partition invariant.
  EXPECT_EQ(static_cast<int>(mask.masked_tokens.size() +
                             mask.unmasked_tokens.size()),
            144);
}

TEST(GenerateAutoMaskTest, DilationEnlargesTheMask) {
  const Matrix img = ImageWithBlob(48, 48, 20, 20, 6, 6);
  AutoMaskOptions tight;
  tight.dilation = 0;
  AutoMaskOptions padded;
  padded.dilation = 4;
  const Mask a = GenerateAutoMask(img, tight);
  const Mask b = GenerateAutoMask(img, padded);
  EXPECT_GT(b.masked_tokens.size(), a.masked_tokens.size());
}

TEST(GenerateAutoMaskTest, FlatImageFallsBackToOneToken) {
  Matrix flat(16, 16);
  flat.FillConstant(0.5f);
  const Mask mask = GenerateAutoMask(flat, AutoMaskOptions{});
  EXPECT_EQ(mask.masked_tokens.size(), 1u);
}

}  // namespace
}  // namespace flashps::trace
