#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/stats.h"
#include "src/serving/worker.h"

namespace flashps::serving {
namespace {

using model::ComputeMode;
using model::ModelKind;

trace::Request MakeRequest(uint64_t id, double ratio, double arrival_s,
                           int steps = 0) {
  trace::Request r;
  r.id = id;
  r.arrival = TimePoint::FromSeconds(arrival_s);
  r.template_id = static_cast<int>(id % 8);
  r.mask_ratio = ratio;
  r.denoise_steps = steps;
  return r;
}

EngineConfig SmallConfig(SystemKind system = SystemKind::kFlashPS) {
  EngineConfig c = EngineConfig::ForSystem(system, ModelKind::kSdxl);
  c.model_config.denoise_steps = 10;  // Keep virtual runs short.
  return c;
}

TEST(EngineConfigTest, SystemPresetsMatchPaper) {
  const auto flash = EngineConfig::ForSystem(SystemKind::kFlashPS,
                                             ModelKind::kSdxl);
  EXPECT_EQ(flash.mode, ComputeMode::kMaskAwareY);
  EXPECT_EQ(flash.batching, BatchPolicy::kContinuousDisaggregated);
  EXPECT_EQ(flash.max_batch, 8);

  const auto sd21 = EngineConfig::ForSystem(SystemKind::kFlashPS,
                                            ModelKind::kSd21);
  EXPECT_EQ(sd21.max_batch, 4);  // §6.2.

  const auto fisedit = EngineConfig::ForSystem(SystemKind::kFISEdit,
                                               ModelKind::kSd21);
  EXPECT_EQ(fisedit.max_batch, 1);
  EXPECT_EQ(fisedit.mode, ComputeMode::kSparse);

  const auto diffusers = EngineConfig::ForSystem(SystemKind::kDiffusers,
                                                 ModelKind::kFlux);
  EXPECT_EQ(diffusers.mode, ComputeMode::kFull);
  EXPECT_EQ(diffusers.batching, BatchPolicy::kStatic);
}

TEST(WorkerTest, SingleRequestLifecycle) {
  Worker worker(0, SmallConfig());
  worker.Enqueue(MakeRequest(1, 0.2, 0.0), TimePoint());
  const TimePoint end = worker.Drain();
  auto done = worker.TakeCompleted();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].request.id, 1u);
  EXPECT_GT(done[0].total().seconds(), 0.0);
  EXPECT_LE(done[0].completion, end);
  EXPECT_GE(done[0].denoise_done, done[0].exec_start);
  EXPECT_TRUE(worker.idle());
}

TEST(WorkerTest, StepLatencyScalesWithMaskRatio) {
  Worker worker(0, SmallConfig());
  const Duration small = worker.StepLatency({0.05});
  const Duration large = worker.StepLatency({0.5});
  EXPECT_LT(small, large);
  EXPECT_EQ(worker.StepLatency({}).micros(), 0);
}

TEST(WorkerTest, MaskAwareFasterThanFullCompute) {
  Worker flash(0, SmallConfig(SystemKind::kFlashPS));
  Worker diffusers(1, SmallConfig(SystemKind::kDiffusers));
  EXPECT_LT(flash.StepLatency({0.15}), diffusers.StepLatency({0.15}));
}

TEST(WorkerTest, StaticBatchingBlocksNewArrivals) {
  EngineConfig config = SmallConfig(SystemKind::kDiffusers);
  Worker worker(0, config);
  worker.Enqueue(MakeRequest(1, 0.2, 0.0), TimePoint());
  // Arrives immediately after the first batch starts.
  worker.AdvanceTo(TimePoint::FromSeconds(0.001));
  worker.Enqueue(MakeRequest(2, 0.2, 0.001),
                 TimePoint::FromSeconds(0.001));
  worker.Drain();
  auto done = worker.TakeCompleted();
  ASSERT_EQ(done.size(), 2u);
  std::sort(done.begin(), done.end(), [](const auto& a, const auto& b) {
    return a.request.id < b.request.id;
  });
  // Request 2 had to wait for the whole of request 1's inference.
  EXPECT_GE(done[1].queueing().seconds(),
            done[0].inference().seconds() * 0.9);
}

TEST(WorkerTest, ContinuousBatchingAdmitsWithinOneStep) {
  EngineConfig config = SmallConfig(SystemKind::kFlashPS);
  Worker worker(0, config);
  worker.Enqueue(MakeRequest(1, 0.2, 0.0), TimePoint());
  worker.AdvanceTo(TimePoint::FromSeconds(0.3));
  const TimePoint arrival = TimePoint::FromSeconds(0.3);
  worker.Enqueue(MakeRequest(2, 0.2, 0.3), arrival);
  worker.Drain();
  auto done = worker.TakeCompleted();
  ASSERT_EQ(done.size(), 2u);
  std::sort(done.begin(), done.end(), [](const auto& a, const auto& b) {
    return a.request.id < b.request.id;
  });
  // Queueing is bounded by ~one step plus preprocessing, far below request
  // 1's full inference time.
  const double one_step = worker.StepLatency({0.2, 0.2}).seconds();
  EXPECT_LE(done[1].queueing().seconds(),
            one_step + config.model_config.pre_latency.seconds() + 0.05);
  EXPECT_LT(done[1].queueing().seconds(), done[0].inference().seconds() / 2);
}

TEST(WorkerTest, NaiveContinuousInterruptsRunningRequests) {
  EngineConfig naive = SmallConfig(SystemKind::kFlashPS);
  naive.batching = BatchPolicy::kContinuousNaive;
  Worker worker(0, naive);
  worker.Enqueue(MakeRequest(1, 0.2, 0.0), TimePoint());
  // Three more requests arrive while request 1 runs.
  for (uint64_t i = 2; i <= 4; ++i) {
    const double t = 0.2 * static_cast<double>(i - 1);
    worker.AdvanceTo(TimePoint::FromSeconds(t));
    worker.Enqueue(MakeRequest(i, 0.2, t), TimePoint::FromSeconds(t));
  }
  worker.Drain();
  auto done = worker.TakeCompleted();
  ASSERT_EQ(done.size(), 4u);
  const auto first = std::find_if(done.begin(), done.end(), [](const auto& d) {
    return d.request.id == 1;
  });
  ASSERT_NE(first, done.end());
  EXPECT_GE(first->interruptions, 3);  // Interrupted by each admission.
}

TEST(WorkerTest, DisaggregationEliminatesInterruptions) {
  Worker worker(0, SmallConfig(SystemKind::kFlashPS));
  worker.Enqueue(MakeRequest(1, 0.2, 0.0), TimePoint());
  for (uint64_t i = 2; i <= 4; ++i) {
    const double t = 0.2 * static_cast<double>(i - 1);
    worker.AdvanceTo(TimePoint::FromSeconds(t));
    worker.Enqueue(MakeRequest(i, 0.2, t), TimePoint::FromSeconds(t));
  }
  worker.Drain();
  for (const auto& done : worker.TakeCompleted()) {
    EXPECT_EQ(done.interruptions, 0);
  }
}

TEST(WorkerTest, DisaggregatedFasterTailThanNaiveUnderChurn) {
  // The §6.4 microbenchmark in miniature: same arrivals, same compute; only
  // the batching policy differs.
  auto run = [](BatchPolicy policy) {
    EngineConfig config = SmallConfig(SystemKind::kFlashPS);
    config.batching = policy;
    Worker worker(0, config);
    Rng rng(3);
    TimePoint t;
    for (uint64_t i = 0; i < 24; ++i) {
      t = t + Duration::Seconds(rng.Exponential(2.0));
      worker.AdvanceTo(t);
      worker.Enqueue(MakeRequest(i, 0.1 + 0.3 * rng.NextDouble(), 0.0), t);
    }
    worker.Drain();
    StatAccumulator latency;
    for (const auto& done : worker.TakeCompleted()) {
      latency.Add(done.total().seconds());
    }
    return latency.P95();
  };
  EXPECT_LT(run(BatchPolicy::kContinuousDisaggregated),
            run(BatchPolicy::kContinuousNaive));
}

TEST(WorkerTest, TeaCacheRunsFewerSteps) {
  EngineConfig tea = SmallConfig(SystemKind::kTeaCache);
  Worker worker(0, tea);
  EXPECT_LT(worker.EffectiveSteps(), tea.model_config.denoise_steps);
  EXPECT_GE(worker.EffectiveSteps(), 1);

  EngineConfig flash = SmallConfig(SystemKind::kFlashPS);
  Worker flash_worker(0, flash);
  EXPECT_EQ(flash_worker.EffectiveSteps(), flash.model_config.denoise_steps);
}

TEST(WorkerTest, CacheMissDelaysAdmissionButPrefetchesDuringQueue) {
  EngineConfig config = SmallConfig(SystemKind::kFlashPS);
  auto spec = device::DeviceSpec::Get(config.model_config.gpu);
  cache::CacheEngine cache_engine(/*host_capacity=*/1ULL << 20, spec);
  // Register three templates into a two-slot host tier so template 0 is
  // evicted to disk before the request arrives.
  cache_engine.RegisterTemplate(0, 1ULL << 19, TimePoint());
  cache_engine.RegisterTemplate(1, 1ULL << 19, TimePoint());
  cache_engine.RegisterTemplate(2, 1ULL << 19, TimePoint());  // Evicts 0.
  ASSERT_EQ(cache_engine.Locate(0), cache::Tier::kDisk);

  Worker worker(0, config);
  worker.AttachCache(&cache_engine);
  trace::Request r = MakeRequest(1, 0.2, 0.0);
  r.template_id = 0;
  worker.Enqueue(r, TimePoint());
  worker.Drain();
  auto done = worker.TakeCompleted();
  ASSERT_EQ(done.size(), 1u);
  // Admission waited for the disk promotion.
  const double promo_s = spec.DiskLatency(1ULL << 19).seconds();
  EXPECT_GE(done[0].queueing().seconds(), promo_s * 0.5);
}

TEST(WorkerTest, RemainingStepsAndStatus) {
  EngineConfig config = SmallConfig(SystemKind::kFlashPS);
  Worker worker(0, config);
  EXPECT_TRUE(worker.HasSlack());
  worker.Enqueue(MakeRequest(1, 0.3, 0.0), TimePoint());
  worker.Enqueue(MakeRequest(2, 0.4, 0.0), TimePoint());
  EXPECT_EQ(worker.RemainingSteps(),
            2 * static_cast<int64_t>(config.model_config.denoise_steps));
  EXPECT_EQ(worker.waiting_count(), 2);
  const auto waiting = worker.WaitingRatios();
  ASSERT_EQ(waiting.size(), 2u);
  EXPECT_DOUBLE_EQ(waiting[0], 0.3);
  EXPECT_DOUBLE_EQ(waiting[1], 0.4);
}

TEST(WorkerTest, AdvanceToIsIdempotentForPastTimes) {
  Worker worker(0, SmallConfig());
  worker.Enqueue(MakeRequest(1, 0.2, 0.0), TimePoint());
  worker.AdvanceTo(TimePoint::FromSeconds(1.0));
  const TimePoint now = worker.now();
  worker.AdvanceTo(TimePoint::FromSeconds(0.5));
  EXPECT_EQ(worker.now(), now);
}

TEST(WorkerTest, CompletionsAreConservedAndOrdered) {
  Worker worker(0, SmallConfig());
  const int n = 12;
  Rng rng(9);
  TimePoint t;
  for (uint64_t i = 0; i < n; ++i) {
    t = t + Duration::Seconds(rng.Exponential(1.0));
    worker.AdvanceTo(t);
    worker.Enqueue(MakeRequest(i, 0.05 + 0.4 * rng.NextDouble(), 0.0), t);
  }
  worker.Drain();
  const auto done = worker.TakeCompleted();
  ASSERT_EQ(done.size(), static_cast<size_t>(n));
  for (const auto& d : done) {
    EXPECT_GE(d.exec_start, d.arrival);
    EXPECT_GE(d.denoise_done, d.exec_start);
    EXPECT_GE(d.completion, d.denoise_done);
  }
  // TakeCompleted drains.
  EXPECT_TRUE(worker.TakeCompleted().empty());
}

TEST(WorkerTest, StaticBatchCompletesTogether) {
  EngineConfig config = SmallConfig(SystemKind::kDiffusers);
  config.max_batch = 4;
  Worker worker(0, config);
  for (uint64_t i = 0; i < 4; ++i) {
    worker.Enqueue(MakeRequest(i, 0.1 + 0.1 * static_cast<double>(i), 0.0),
                   TimePoint());
  }
  worker.Drain();
  const auto done = worker.TakeCompleted();
  ASSERT_EQ(done.size(), 4u);
  // All four left the denoise loop at the same instant (batch completes as
  // a unit) and post-processing serialized after it.
  for (size_t i = 1; i < done.size(); ++i) {
    EXPECT_EQ(done[i].denoise_done.micros(), done[0].denoise_done.micros());
    EXPECT_GT(done[i].completion, done[i - 1].completion);
  }
}

TEST(WorkerTest, RaggedBatchPaddingMakesMixedRatiosCostly) {
  // Per the ragged-padding model, a batch mixing a tiny and a huge mask
  // costs more than the sum of two homogeneous batches would suggest.
  Worker worker(0, SmallConfig(SystemKind::kFlashPS));
  const Duration mixed = worker.StepLatency({0.02, 0.8});
  const Duration tiny_pair = worker.StepLatency({0.02, 0.02});
  const Duration huge_pair = worker.StepLatency({0.8, 0.8});
  const Duration avg = (tiny_pair + huge_pair) / 2;
  EXPECT_GT(mixed, avg);
}

TEST(WorkerTest, PipelinePlannerNeverSlowerThanStrawman) {
  EngineConfig planned = SmallConfig(SystemKind::kFlashPS);
  EngineConfig strawman = planned;
  strawman.use_pipeline_planner = false;
  const Worker a(0, planned);
  const Worker b(0, strawman);
  for (const double m : {0.03, 0.1, 0.3, 0.7}) {
    EXPECT_LE(a.StepLatency({m}), b.StepLatency({m})) << "m=" << m;
  }
}

TEST(WorkerTest, FISEditRunsBatchOfOne) {
  EngineConfig config = EngineConfig::ForSystem(SystemKind::kFISEdit,
                                                ModelKind::kSd21);
  config.model_config.denoise_steps = 5;
  Worker worker(0, config);
  worker.Enqueue(MakeRequest(1, 0.1, 0.0), TimePoint());
  worker.Enqueue(MakeRequest(2, 0.1, 0.0), TimePoint());
  worker.Drain();
  auto done = worker.TakeCompleted();
  ASSERT_EQ(done.size(), 2u);
  std::sort(done.begin(), done.end(), [](const auto& a2, const auto& b2) {
    return a2.request.id < b2.request.id;
  });
  // Strictly serialized: the second starts after the first fully finishes.
  EXPECT_GE(done[1].exec_start, done[0].denoise_done);
}

}  // namespace
}  // namespace flashps::serving
