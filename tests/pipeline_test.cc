#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/device/device.h"
#include "src/model/timing.h"
#include "src/pipeline/pipeline.h"

namespace flashps::pipeline {
namespace {

std::vector<Duration> Millis(std::initializer_list<int> values) {
  std::vector<Duration> out;
  for (const int v : values) {
    out.push_back(Duration::Millis(v));
  }
  return out;
}

TEST(ExecutePlanTest, AllCachedComputeBoundHasNoBubbles) {
  // Loads are much faster than compute: after the first block's load, the
  // compute stream never stalls.
  const auto cw = Millis({10, 10, 10});
  const auto cwo = Millis({30, 30, 30});
  const auto load = Millis({2, 2, 2});
  const std::vector<bool> all(3, true);
  const auto trace = ExecutePlan(cw, cwo, load, all);
  // First compute waits for first load (2ms), then back-to-back.
  EXPECT_EQ(trace.total.millis(), 32.0);
  EXPECT_EQ(trace.compute_idle.millis(), 2.0);
}

TEST(ExecutePlanTest, LoadBoundPipelineHasBubbles) {
  const auto cw = Millis({5, 5, 5});
  const auto cwo = Millis({30, 30, 30});
  const auto load = Millis({10, 10, 10});
  const std::vector<bool> all(3, true);
  const auto trace = ExecutePlan(cw, cwo, load, all);
  // Compute of block i starts at load end (10i+10); last ends at 35.
  EXPECT_EQ(trace.total.millis(), 35.0);
  EXPECT_GT(trace.compute_idle.micros(), 0);
}

TEST(ExecutePlanTest, UncachedBlocksSkipLoads) {
  const auto cw = Millis({5, 5});
  const auto cwo = Millis({8, 8});
  const auto load = Millis({100, 100});
  const std::vector<bool> none(2, false);
  const auto trace = ExecutePlan(cw, cwo, load, none);
  EXPECT_EQ(trace.total.millis(), 16.0);
  EXPECT_EQ(trace.compute_idle.micros(), 0);
}

TEST(PlanBubbleFreeTest, PrefersCacheWhenLoadsAreCheap) {
  const auto cw = Millis({10, 10, 10, 10});
  const auto cwo = Millis({40, 40, 40, 40});
  const auto load = Millis({1, 1, 1, 1});
  const auto plan = PlanBubbleFree(cw, cwo, load);
  for (const bool c : plan.use_cache) {
    EXPECT_TRUE(c);
  }
  EXPECT_EQ(plan.latency.millis(), 41.0);
}

TEST(PlanBubbleFreeTest, AvoidsCacheWhenLoadDominates) {
  const auto cw = Millis({10, 10});
  const auto cwo = Millis({12, 12});
  const auto load = Millis({50, 50});
  const auto plan = PlanBubbleFree(cw, cwo, load);
  for (const bool c : plan.use_cache) {
    EXPECT_FALSE(c);
  }
  EXPECT_EQ(plan.latency.millis(), 24.0);
}

TEST(PlanBubbleFreeTest, MixesWhenLoadIsModeratelyExpensive) {
  // Caching one block saves 20ms compute at 25ms load; the pipeline can hide
  // some loading behind other blocks' computation, so a mix wins.
  const auto cw = Millis({5, 5, 5, 5, 5, 5});
  const auto cwo = Millis({25, 25, 25, 25, 25, 25});
  const auto load = Millis({30, 30, 30, 30, 30, 30});
  const auto plan = PlanBubbleFree(cw, cwo, load);
  int cached = 0;
  for (const bool c : plan.use_cache) {
    cached += c ? 1 : 0;
  }
  EXPECT_GT(cached, 0);
  EXPECT_LT(cached, 6);
  // Must beat both extremes.
  const std::vector<bool> all(6, true);
  const std::vector<bool> none(6, false);
  EXPECT_LE(plan.latency, ExecutePlan(cw, cwo, load, all).total);
  EXPECT_LE(plan.latency, ExecutePlan(cw, cwo, load, none).total);
}

TEST(PlanBubbleFreeTest, PlanLatencyMatchesExecution) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBelow(12));
    std::vector<Duration> cw;
    std::vector<Duration> cwo;
    std::vector<Duration> load;
    for (int i = 0; i < n; ++i) {
      const int w = 1 + static_cast<int>(rng.NextBelow(20));
      cw.push_back(Duration::Millis(w));
      cwo.push_back(Duration::Millis(w + 1 + static_cast<int>(rng.NextBelow(30))));
      load.push_back(Duration::Millis(static_cast<int>(rng.NextBelow(40))));
    }
    const auto plan = PlanBubbleFree(cw, cwo, load);
    const auto trace = ExecutePlan(cw, cwo, load, plan.use_cache);
    EXPECT_EQ(plan.latency.micros(), trace.total.micros());
  }
}

TEST(PlanBubbleFreeTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(123);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBelow(10));
    std::vector<Duration> cw;
    std::vector<Duration> cwo;
    std::vector<Duration> load;
    for (int i = 0; i < n; ++i) {
      const int w = 1 + static_cast<int>(rng.NextBelow(15));
      cw.push_back(Duration::Millis(w));
      cwo.push_back(Duration::Millis(w + static_cast<int>(rng.NextBelow(25))));
      load.push_back(Duration::Millis(static_cast<int>(rng.NextBelow(30))));
    }
    const auto dp = PlanBubbleFree(cw, cwo, load);
    const auto brute = PlanBruteForce(cw, cwo, load);
    EXPECT_EQ(dp.latency.micros(), brute.latency.micros())
        << "trial " << trial << " n=" << n;
  }
}

TEST(PlanBubbleFreeTest, EmptyAndSingleBlock) {
  const auto empty = PlanBubbleFree({}, {}, {});
  EXPECT_EQ(empty.latency.micros(), 0);

  const auto cw = Millis({10});
  const auto cwo = Millis({30});
  const auto load_cheap = Millis({5});
  const auto plan = PlanBubbleFree(cw, cwo, load_cheap);
  EXPECT_TRUE(plan.use_cache[0]);
  EXPECT_EQ(plan.latency.millis(), 15.0);  // Load then compute.

  const auto load_dear = Millis({25});
  const auto plan2 = PlanBubbleFree(cw, cwo, load_dear);
  EXPECT_FALSE(plan2.use_cache[0]);
  EXPECT_EQ(plan2.latency.millis(), 30.0);
}

TEST(ReferenceSchemesTest, OrderingNaiveGeStrawmanGeIdeal) {
  const auto cw = Millis({10, 10, 10, 10});
  const auto load = Millis({8, 8, 8, 8});
  const Duration naive = NaiveSequentialLatency(cw, load);
  const Duration strawman = StrawmanPipelineLatency(cw, load);
  const Duration ideal = IdealLatency(cw);
  EXPECT_EQ(naive.millis(), 72.0);
  EXPECT_EQ(ideal.millis(), 40.0);
  EXPECT_GE(naive, strawman);
  EXPECT_GE(strawman, ideal);
}

TEST(PipelineOnRealModelTest, BubbleFreeNeverWorseAndBeatsStrawmanWhenLoadBinds) {
  // Flux's per-step cache is large; at small mask ratios loading binds and
  // the DP's selective caching beats always-caching (paper Fig. 9). At any
  // ratio it can never be worse.
  const auto config = model::TimingConfig::Get(model::ModelKind::kFlux);
  const auto spec = device::DeviceSpec::Get(config.gpu);
  bool strictly_better_somewhere = false;
  for (const double m : {0.03, 0.05, 0.1, 0.2, 0.4}) {
    const double ratios[] = {m};
    const auto workload = model::BuildStepWorkload(
        config, ratios, model::ComputeMode::kMaskAwareY);
    const auto d = model::ComputeStepDurations(config, spec, workload);
    const auto plan =
        PlanBubbleFree(d.compute_with_cache, d.compute_without_cache, d.load);
    const Duration strawman =
        StrawmanPipelineLatency(d.compute_with_cache, d.load);
    EXPECT_LE(plan.latency, strawman) << "m=" << m;
    strictly_better_somewhere |= plan.latency < strawman;
  }
  EXPECT_TRUE(strictly_better_somewhere);
}

}  // namespace
}  // namespace flashps::pipeline
