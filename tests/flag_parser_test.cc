// The shared --key=value parser the daemons use: strict integer parsing
// (no silent atol-to-zero), range checks as errors, and unknown-flag
// detection via the set of keys the program actually queried.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/flag_parser.h"

namespace flashps::flags {
namespace {

// Owns mutable argv storage for a parser under test.
class Args {
 public:
  explicit Args(std::vector<std::string> args) : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "prog");
    for (std::string& arg : storage_) {
      argv_.push_back(arg.data());
    }
  }
  int argc() const { return static_cast<int>(argv_.size()); }
  char** argv() { return argv_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> argv_;
};

TEST(FlagParserTest, ParsesStringsLongsAndSwitches) {
  Args args({"--port=7412", "--host=10.0.0.1", "--verbose"});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_EQ(flags.Long("port", 0), 7412);
  EXPECT_EQ(flags.String("host", "127.0.0.1"), "10.0.0.1");
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_FALSE(flags.Has("quiet"));
  EXPECT_EQ(flags.Long("workers", 2), 2);  // Absent -> fallback, no error.
  EXPECT_TRUE(flags.ok()) << flags.ErrorText();
}

TEST(FlagParserTest, MalformedIntegerIsAnErrorNotZero) {
  // The old per-binary atol helpers turned this into port 0 silently.
  Args args({"--port=sevenfourtwelve"});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_EQ(flags.Long("port", 7412), 7412);  // Fallback, never 0.
  EXPECT_FALSE(flags.ok());
  ASSERT_EQ(flags.errors().size(), 1u);
  EXPECT_NE(flags.errors()[0].find("invalid integer"), std::string::npos);
  EXPECT_NE(flags.errors()[0].find("sevenfourtwelve"), std::string::npos);
}

TEST(FlagParserTest, TrailingGarbageAndEmptyValuesAreErrors) {
  Args args({"--port=7412x", "--workers="});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_EQ(flags.Long("port", 1), 1);
  EXPECT_EQ(flags.Long("workers", 2), 2);
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.errors().size(), 2u);
}

TEST(FlagParserTest, OutOfRangeIsAnErrorNotAClamp) {
  Args args({"--port=99999"});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_EQ(flags.LongInRange("port", 7412, 1, 65535), 7412);
  EXPECT_FALSE(flags.ok());
  ASSERT_EQ(flags.errors().size(), 1u);
  EXPECT_NE(flags.errors()[0].find("out of range"), std::string::npos);
}

TEST(FlagParserTest, InRangeValuePassesThrough) {
  Args args({"--port=80"});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_EQ(flags.LongInRange("port", 7412, 1, 65535), 80);
  EXPECT_TRUE(flags.ok()) << flags.ErrorText();
}

TEST(FlagParserTest, UnknownFlagIsReportedAfterLastLookup) {
  Args args({"--prot=7412"});  // Typo for --port.
  FlagParser flags(args.argc(), args.argv());
  EXPECT_EQ(flags.Long("port", 7412), 7412);
  EXPECT_FALSE(flags.ok());
  ASSERT_EQ(flags.errors().size(), 1u);
  EXPECT_NE(flags.errors()[0].find("unknown flag --prot"), std::string::npos);
  // ok() is idempotent: a second call does not double-report.
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.errors().size(), 1u);
}

TEST(FlagParserTest, PositionalArgumentsAreRejected) {
  Args args({"7412", "--port=1"});
  FlagParser flags(args.argc(), args.argv());
  flags.Long("port", 0);
  EXPECT_FALSE(flags.ok());
  ASSERT_EQ(flags.errors().size(), 1u);
  EXPECT_NE(flags.errors()[0].find("unrecognized argument '7412'"),
            std::string::npos);
}

TEST(FlagParserTest, RepeatedScalarIsAnErrorNotLastOneWins) {
  // The old map silently kept the last occurrence; "--port=1 --port=2"
  // ran on 2 with no hint the first was dropped.
  Args args({"--port=1", "--port=2"});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_EQ(flags.Long("port", 7412), 7412);  // Fallback, not 2.
  EXPECT_EQ(flags.Long("port", 7412), 7412);  // Re-lookup: no new error.
  EXPECT_FALSE(flags.ok());
  ASSERT_EQ(flags.errors().size(), 1u);
  EXPECT_NE(flags.errors()[0].find("--port given 2 times"),
            std::string::npos);
}

TEST(FlagParserTest, RepeatedSwitchAndStringAreErrorsToo) {
  Args args({"--verbose", "--verbose", "--host=a", "--host=b"});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_FALSE(flags.Has("verbose"));  // Duplicate resolves to fallback.
  EXPECT_EQ(flags.String("host", "fallback"), "fallback");
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.errors().size(), 2u);
}

TEST(FlagParserTest, StringListAccumulatesAndSplitsOnCommas) {
  Args args({"--resolutions=64x64,96x96", "--resolutions=128x128"});
  FlagParser flags(args.argc(), args.argv());
  const std::vector<std::string> values = flags.StringList("resolutions");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], "64x64");
  EXPECT_EQ(values[1], "96x96");
  EXPECT_EQ(values[2], "128x128");
  EXPECT_TRUE(flags.ok()) << flags.ErrorText();
}

TEST(FlagParserTest, StringListAbsentIsEmptyAndNotAnError) {
  Args args({});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_TRUE(flags.StringList("resolutions").empty());
  EXPECT_TRUE(flags.ok()) << flags.ErrorText();
}

TEST(FlagParserTest, StringListEmptyElementsAreErrors) {
  Args args({"--tags=a,,b", "--names="});
  FlagParser flags(args.argc(), args.argv());
  const std::vector<std::string> tags = flags.StringList("tags");
  ASSERT_EQ(tags.size(), 2u);  // The well-formed elements still parse.
  EXPECT_EQ(tags[0], "a");
  EXPECT_EQ(tags[1], "b");
  EXPECT_TRUE(flags.StringList("names").empty());
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.errors().size(), 2u);
}

TEST(FlagParserTest, HelpTextRendersEveryRegisteredFlag) {
  Args args({});
  FlagParser flags(args.argc(), args.argv());
  flags.LongInRange("port", 7411, 0, 65535, "listen port");
  flags.String("token", "", "shared secret");
  flags.Has("help", "print this help");
  const std::string help = flags.HelpText("daemon");

  EXPECT_NE(help.find("usage: daemon"), std::string::npos);
  // Each registered lookup appears with its placeholder, help string,
  // default, and (for ranged integers) the range.
  EXPECT_NE(help.find("--port=N"), std::string::npos);
  EXPECT_NE(help.find("listen port (default 7411, range [0, 65535])"),
            std::string::npos);
  EXPECT_NE(help.find("--token=VALUE"), std::string::npos);
  EXPECT_NE(help.find("shared secret (default \"\")"), std::string::npos);
  // Bare switches render without a placeholder or default.
  EXPECT_NE(help.find("--help"), std::string::npos);
  EXPECT_EQ(help.find("--help=N"), std::string::npos);
  EXPECT_NE(help.find("print this help"), std::string::npos);
}

TEST(FlagParserTest, HelpTextKeepsLookupOrderAndDedupesRepeats) {
  Args args({});
  FlagParser flags(args.argc(), args.argv());
  flags.Long("zeta", 1, "first");
  flags.Long("alpha", 2, "second");
  flags.Long("zeta", 1);  // Repeat lookup: no duplicate row.
  const std::string help = flags.HelpText("p");

  const size_t zeta = help.find("--zeta");
  const size_t alpha = help.find("--alpha");
  ASSERT_NE(zeta, std::string::npos);
  ASSERT_NE(alpha, std::string::npos);
  EXPECT_LT(zeta, alpha);  // Lookup order, not alphabetical.
  EXPECT_EQ(help.find("--zeta", zeta + 1), std::string::npos);
  EXPECT_NE(help.find("first"), std::string::npos);
}

TEST(FlagParserTest, HelpLookupsDoNotDisturbParsingOrOk) {
  Args args({"--port=80"});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_EQ(flags.LongInRange("port", 0, 0, 65535, "listen port"), 80);
  EXPECT_FALSE(flags.Has("help", "print this help"));
  (void)flags.HelpText("daemon");
  EXPECT_TRUE(flags.ok());
}

TEST(FlagParserTest, ErrorTextIsOneLinePerError) {
  Args args({"--port=bad", "--mystery=1"});
  FlagParser flags(args.argc(), args.argv());
  flags.Long("port", 0);
  EXPECT_FALSE(flags.ok());
  const std::string text = flags.ErrorText();
  EXPECT_EQ(static_cast<size_t>(
                std::count(text.begin(), text.end(), '\n')),
            flags.errors().size());
}

}  // namespace
}  // namespace flashps::flags
