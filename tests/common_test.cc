#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/common/virtual_clock.h"

namespace flashps {
namespace {

TEST(DurationTest, ArithmeticAndConversions) {
  const Duration d = Duration::Millis(1500);
  EXPECT_EQ(d.micros(), 1'500'000);
  EXPECT_DOUBLE_EQ(d.seconds(), 1.5);
  EXPECT_EQ((d + Duration::Millis(500)).seconds(), 2.0);
  EXPECT_EQ((d - Duration::Millis(500)).seconds(), 1.0);
  EXPECT_EQ((d * 2).seconds(), 3.0);
  EXPECT_EQ((d / 3).micros(), 500'000);
  EXPECT_DOUBLE_EQ(Duration::Seconds(3.0) / d, 2.0);
}

TEST(DurationTest, SecondsRoundsToMicros) {
  EXPECT_EQ(Duration::Seconds(1e-7).micros(), 0);
  EXPECT_EQ(Duration::Seconds(1.4999999e-6).micros(), 1);
  EXPECT_EQ(Duration::Seconds(-1.0).micros(), -1'000'000);
}

TEST(TimePointTest, Ordering) {
  const TimePoint a = TimePoint::FromSeconds(1.0);
  const TimePoint b = a + Duration::Seconds(0.5);
  EXPECT_LT(a, b);
  EXPECT_EQ((b - a).millis(), 500.0);
  EXPECT_EQ(Later(a, b), b);
  EXPECT_EQ(Later(b, a), b);
}

TEST(VirtualClockTest, MonotoneAdvance) {
  VirtualClock clock;
  EXPECT_EQ(clock.now().micros(), 0);
  clock.AdvanceTo(TimePoint::FromSeconds(2.0));
  EXPECT_DOUBLE_EQ(clock.now().seconds(), 2.0);
  // Backwards moves are ignored.
  clock.AdvanceTo(TimePoint::FromSeconds(1.0));
  EXPECT_DOUBLE_EQ(clock.now().seconds(), 2.0);
  clock.AdvanceBy(Duration::Seconds(1.0));
  EXPECT_DOUBLE_EQ(clock.now().seconds(), 3.0);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, SplitStreamsDiffer) {
  Rng a(7);
  Rng split = a.Split();
  bool any_diff = false;
  for (int i = 0; i < 32; ++i) {
    any_diff |= a.NextU64() != split.NextU64();
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBelowUnbiasedSupport) {
  Rng rng(13);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    ++counts[rng.NextBelow(7)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 10000, 600);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  StatAccumulator acc;
  for (int i = 0; i < 50000; ++i) {
    acc.Add(rng.Normal(3.0, 2.0));
  }
  EXPECT_NEAR(acc.Mean(), 3.0, 0.05);
  EXPECT_NEAR(acc.Stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  StatAccumulator acc;
  for (int i = 0; i < 50000; ++i) {
    acc.Add(rng.Exponential(4.0));
  }
  EXPECT_NEAR(acc.Mean(), 0.25, 0.01);
}

TEST(RngTest, PoissonMean) {
  Rng rng(23);
  StatAccumulator small;
  StatAccumulator large;
  for (int i = 0; i < 20000; ++i) {
    small.Add(rng.Poisson(3.5));
    large.Add(rng.Poisson(100.0));
  }
  EXPECT_NEAR(small.Mean(), 3.5, 0.1);
  EXPECT_NEAR(large.Mean(), 100.0, 0.5);
}

TEST(RngTest, BetaMeanMatchesParameters) {
  Rng rng(29);
  StatAccumulator acc;
  for (int i = 0; i < 30000; ++i) {
    const double v = rng.Beta(0.8, 6.47);
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
    acc.Add(v);
  }
  EXPECT_NEAR(acc.Mean(), 0.8 / (0.8 + 6.47), 0.01);
}

TEST(ZipfSamplerTest, SkewsTowardHead) {
  Rng rng(31);
  ZipfSampler zipf(100, 1.1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(StatAccumulatorTest, SummaryStats) {
  StatAccumulator acc;
  for (int i = 1; i <= 100; ++i) {
    acc.Add(static_cast<double>(i));
  }
  EXPECT_EQ(acc.count(), 100u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(acc.Min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.Max(), 100.0);
  EXPECT_NEAR(acc.P50(), 50.5, 1e-9);
  EXPECT_NEAR(acc.P95(), 95.05, 1e-9);
  EXPECT_NEAR(acc.Percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(acc.Percentile(0.0), 1.0, 1e-9);
}

TEST(StatAccumulatorTest, PercentileAfterAppend) {
  StatAccumulator acc;
  acc.Add(1.0);
  EXPECT_DOUBLE_EQ(acc.P95(), 1.0);
  acc.Add(100.0);  // Invalidates the cached sort.
  EXPECT_GT(acc.P95(), 90.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 1.0, 10);
  h.Add(0.05);
  h.Add(0.05);
  h.Add(0.95);
  h.Add(2.0);   // Clamps to last bucket.
  h.Add(-1.0);  // Clamps to first bucket.
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.6);
  EXPECT_FALSE(h.Render().empty());
}

TEST(FitLinearTest, ExactLine) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 7.0);
  }
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLinearTest, NoisyLineHighR2) {
  Rng rng(37);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double xv = rng.Uniform(0.0, 10.0);
    x.push_back(xv);
    y.push_back(2.0 * xv + 1.0 + rng.Normal(0.0, 0.1));
  }
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(FitLinearTest, DegenerateInput) {
  const LinearFit empty = FitLinear({}, {});
  EXPECT_EQ(empty.slope, 0.0);
  const LinearFit constant_x = FitLinear({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(constant_x.slope, 0.0);
  EXPECT_NEAR(constant_x.intercept, 2.0, 1e-9);
}

}  // namespace
}  // namespace flashps
