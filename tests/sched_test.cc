#include <gtest/gtest.h>

#include "src/sched/latency_model.h"
#include "src/sched/scheduler.h"

namespace flashps::sched {
namespace {

using model::ComputeMode;
using model::ModelKind;

trace::Request MakeRequest(double ratio) {
  trace::Request r;
  r.mask_ratio = ratio;
  r.denoise_steps = 50;
  return r;
}

WorkerStatus MakeStatus(int id, std::vector<double> running,
                        std::vector<double> waiting = {}) {
  WorkerStatus s;
  s.worker_id = id;
  s.running_ratios = std::move(running);
  s.waiting_ratios = std::move(waiting);
  s.remaining_steps =
      static_cast<int64_t>(s.running_ratios.size() + s.waiting_ratios.size()) *
      25;
  s.max_batch = 8;
  s.has_slack =
      s.running_ratios.size() + s.waiting_ratios.size() < 8;
  return s;
}

TEST(LatencyModelTest, FitsWithHighR2) {
  // Fig. 11: the linear FLOPs->latency regression fits with R^2 ~= 0.99.
  for (const ModelKind kind :
       {ModelKind::kSd21, ModelKind::kSdxl, ModelKind::kFlux}) {
    const auto m = LatencyModel::FitOffline(model::TimingConfig::Get(kind),
                                            ComputeMode::kMaskAwareY);
    EXPECT_GT(m.compute_fit().r2, 0.98) << model::ToString(kind);
    EXPECT_GT(m.compute_fit().slope, 0.0);
    EXPECT_GT(m.load_fit().r2, 0.98) << model::ToString(kind);
    EXPECT_GT(m.load_fit().slope, 0.0);
  }
}

TEST(LatencyModelTest, EstimatesTrackTheDeviceModel) {
  const auto config = model::TimingConfig::Get(ModelKind::kSdxl);
  const auto spec = device::DeviceSpec::Get(config.gpu);
  const auto m = LatencyModel::FitOffline(config, ComputeMode::kMaskAwareY);
  for (const double ratio : {0.05, 0.2, 0.5}) {
    const std::vector<double> ratios = {ratio};
    const auto workload =
        model::BuildStepWorkload(config, ratios, ComputeMode::kMaskAwareY);
    const auto truth = model::ComputeStepDurations(config, spec, workload);
    const auto est = m.EstimateStepDurations(ratios);
    ASSERT_EQ(est.compute_with_cache.size(), truth.compute_with_cache.size());
    for (size_t b = 0; b < est.compute_with_cache.size(); ++b) {
      const double t = truth.compute_with_cache[b].seconds();
      const double e = est.compute_with_cache[b].seconds();
      EXPECT_NEAR(e, t, 0.35 * t + 2e-4) << "ratio " << ratio;
      EXPECT_NEAR(est.load[b].seconds(), truth.load[b].seconds(),
                  0.05 * truth.load[b].seconds() + 1e-5);
    }
  }
}

TEST(LatencyModelTest, StepLatencyMonotoneInRatioAndBatch) {
  const auto m = LatencyModel::FitOffline(
      model::TimingConfig::Get(ModelKind::kSdxl), ComputeMode::kMaskAwareY);
  const std::vector<double> small = {0.05};
  const std::vector<double> large = {0.5};
  EXPECT_LT(m.EstimateStepLatency(small), m.EstimateStepLatency(large));
  const std::vector<double> batch2 = {0.2, 0.2};
  const std::vector<double> batch1 = {0.2};
  EXPECT_GT(m.EstimateStepLatency(batch2), m.EstimateStepLatency(batch1));
  EXPECT_EQ(m.EstimateStepLatency({}).micros(), 0);
}

TEST(RoundRobinRouterTest, Cycles) {
  RoundRobinRouter router;
  std::vector<WorkerStatus> statuses = {MakeStatus(0, {}), MakeStatus(1, {}),
                                        MakeStatus(2, {})};
  const trace::Request r = MakeRequest(0.2);
  EXPECT_EQ(router.Route(r, statuses), 0);
  EXPECT_EQ(router.Route(r, statuses), 1);
  EXPECT_EQ(router.Route(r, statuses), 2);
  EXPECT_EQ(router.Route(r, statuses), 0);
}

TEST(FirstFitRouterTest, PicksFirstWorkerWithSlack) {
  FirstFitRouter router;
  WorkerStatus full = MakeStatus(0, std::vector<double>(8, 0.1));
  full.has_slack = false;
  WorkerStatus open1 = MakeStatus(1, {0.1});
  WorkerStatus open2 = MakeStatus(2, {});
  EXPECT_EQ(router.Route(MakeRequest(0.2), {full, open1, open2}), 1);
  // All full: falls back to fewest outstanding.
  WorkerStatus full2 = MakeStatus(1, std::vector<double>(8, 0.1),
                                  {0.1, 0.1});
  full2.has_slack = false;
  WorkerStatus full3 = MakeStatus(2, std::vector<double>(8, 0.1));
  full3.has_slack = false;
  EXPECT_EQ(router.Route(MakeRequest(0.2), {full, full2, full3}), 0);
}

TEST(FirstFitRouterTest, ConcentratesLoadOnEarlyWorkers) {
  // The §4.4 observation: first-fit piles requests onto the first workers
  // while later ones idle.
  FirstFitRouter router;
  std::vector<WorkerStatus> statuses = {MakeStatus(0, {}), MakeStatus(1, {}),
                                        MakeStatus(2, {})};
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(router.Route(MakeRequest(0.2), statuses), 0);
  }
}

TEST(RequestCountRouterTest, BalancesAssignmentCounts) {
  // The baseline balances cumulative *assigned* requests (no runtime
  // feedback), so over 9 routes each of 3 workers gets 3.
  RequestCountRouter router;
  std::vector<WorkerStatus> statuses = {MakeStatus(0, {}), MakeStatus(1, {}),
                                        MakeStatus(2, {})};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 9; ++i) {
    ++counts[router.Route(MakeRequest(0.2), statuses)];
  }
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 3);
}

TEST(TokenCountRouterTest, BalancesAssignedMaskedTokens) {
  TokenCountRouter router(1000);
  std::vector<WorkerStatus> statuses = {MakeStatus(0, {}), MakeStatus(1, {})};
  // A huge-mask request lands on worker 0; the next several small-mask
  // requests then all go to worker 1 until tokens even out.
  EXPECT_EQ(router.Route(MakeRequest(0.8), statuses), 0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(router.Route(MakeRequest(0.1), statuses), 1);
  }
  // 0.8*1000 vs 4*0.1*1000: worker 1 still lighter.
  EXPECT_EQ(router.Route(MakeRequest(0.1), statuses), 1);
}

TEST(TokenCountRouterTest, IgnoresLoadCostOfSmallMasks) {
  // The token signal treats tiny-mask requests as nearly free even though
  // each still implies a large cache-loading cost — the blind spot §4.4
  // calls out. Many tiny requests keep landing on the same worker.
  TokenCountRouter router(1000);
  std::vector<WorkerStatus> statuses = {MakeStatus(0, {}), MakeStatus(1, {})};
  EXPECT_EQ(router.Route(MakeRequest(0.5), statuses), 0);
  int to_worker1 = 0;
  for (int i = 0; i < 10; ++i) {
    to_worker1 += router.Route(MakeRequest(0.02), statuses) == 1 ? 1 : 0;
  }
  EXPECT_EQ(to_worker1, 10);  // All pile onto worker 1.
}

TEST(MaskAwareRouterTest, CostGrowsWithLoad) {
  const auto config = model::TimingConfig::Get(ModelKind::kSdxl);
  MaskAwareRouter router(
      LatencyModel::FitOffline(config, ComputeMode::kMaskAwareY));
  const trace::Request r = MakeRequest(0.2);
  const double empty = router.CalcCost(r, MakeStatus(0, {}));
  const double busy = router.CalcCost(r, MakeStatus(0, {0.3, 0.3, 0.3}));
  EXPECT_GT(busy, empty);
  const double overfull = router.CalcCost(
      r, MakeStatus(0, {0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3},
                    {0.3, 0.3, 0.3, 0.3}));
  EXPECT_GT(overfull, busy);
}

TEST(MaskAwareRouterTest, AccountsForCacheLoadingOfSmallMasks) {
  // The differentiator vs token-count (§4.4): small masks still impose large
  // cache-loading work, which the DP-based cost sees. A worker stacked with
  // tiny-mask requests (few masked tokens, heavy loads) must cost more than
  // a worker with one moderate request.
  const auto config = model::TimingConfig::Get(ModelKind::kFlux);
  MaskAwareRouter router(
      LatencyModel::FitOffline(config, ComputeMode::kMaskAwareY));
  std::vector<WorkerStatus> statuses = {
      MakeStatus(0, {0.02, 0.02, 0.02, 0.02}), MakeStatus(1, {0.4})};
  statuses[0].remaining_steps = 4 * 25;
  statuses[1].remaining_steps = 25;
  const int pick = router.Route(MakeRequest(0.1), statuses);
  EXPECT_EQ(pick, 1);  // Token counting would say worker 0 is lighter.
}

TEST(MaskAwareRouterTest, PrefersWorkersWithSlack) {
  const auto config = model::TimingConfig::Get(ModelKind::kSdxl);
  MaskAwareRouter router(
      LatencyModel::FitOffline(config, ComputeMode::kMaskAwareY));
  WorkerStatus full = MakeStatus(0, std::vector<double>(8, 0.05));
  full.has_slack = false;
  WorkerStatus slack = MakeStatus(1, {0.4, 0.4});
  const int pick = router.Route(MakeRequest(0.2), {full, slack});
  EXPECT_EQ(pick, 1);
}

TEST(LatencyModelTest, FitProfiledRecoversWallClockSamples) {
  // The gateway fits the routing regression on timed (TFLOPs, seconds)
  // samples of the real engine. A perfectly linear sample set must be
  // recovered exactly: whole-step estimates reproduce y = a*x + b.
  const auto config = model::TimingConfig::Get(ModelKind::kSdxl);
  const double slope = 0.004;      // s per TFLOP
  const double intercept = 0.010;  // s per step
  std::vector<double> xs;
  std::vector<double> ys;
  for (const double x : {1.0, 2.0, 4.0, 8.0}) {
    xs.push_back(x);
    ys.push_back(slope * x + intercept);
  }
  const auto m =
      LatencyModel::FitProfiled(config, ComputeMode::kMaskAwareY, xs, ys);
  EXPECT_GT(m.compute_fit().r2, 0.999);
  // A single-request step's estimate matches the sample line at that
  // request's whole-step TFLOPs.
  const std::vector<double> ratios{0.3};
  const auto workload =
      model::BuildStepWorkload(config, ratios, ComputeMode::kMaskAwareY);
  double flops = workload.non_tf_flops;
  for (const auto& block : workload.blocks) {
    flops += block.flops_with_cache;
  }
  const double expected = slope * (flops / 1e12) + intercept;
  EXPECT_NEAR(m.EstimateStepLatency(ratios).seconds(), expected,
              0.02 * expected);
}

TEST(MaskAwareRouterTest, SerializedCostAddsCoBatchPenalty) {
  // Serialized-batch reading: a request pays for the running batch's step
  // math every one of its own steps, so a worker running a heavy mask is
  // costlier for a light request than an idle worker with the same modeled
  // backlog level.
  const auto config = model::TimingConfig::Get(ModelKind::kSdxl);
  auto m = LatencyModel::FitOffline(config, ComputeMode::kMaskAwareY);
  MaskAwareRouter router(m, /*serialized_batches=*/true);
  WorkerStatus idle = MakeStatus(0, {});
  WorkerStatus heavy = MakeStatus(1, {0.9});
  heavy.running_remaining_steps = {25};
  const trace::Request light = MakeRequest(0.05);
  EXPECT_LT(router.CalcCost(light, idle), router.CalcCost(light, heavy));
  EXPECT_EQ(router.Route(light, {idle, heavy}), 0);
}

TEST(MaskAwareRouterTest, SerializedCostChargesPerRequestOverhead) {
  // With a profiled per-request overhead, a deep queue of cheap-denoise
  // requests still reads as load: the worker with more outstanding requests
  // costs more even when its modeled denoise backlog is smaller.
  const auto config = model::TimingConfig::Get(ModelKind::kSdxl);
  auto m = LatencyModel::FitOffline(config, ComputeMode::kMaskAwareY);
  MaskAwareRouter no_overhead(m, /*serialized_batches=*/true);
  MaskAwareRouter with_overhead(m, /*serialized_batches=*/true,
                                /*per_request_overhead_s=*/10.0);
  WorkerStatus piled = MakeStatus(0, {0.05, 0.05}, {0.05, 0.05, 0.05});
  WorkerStatus single_heavy = MakeStatus(1, {0.9});
  single_heavy.running_remaining_steps = {25};
  const trace::Request light = MakeRequest(0.05);
  EXPECT_GT(with_overhead.CalcCost(light, piled) -
                no_overhead.CalcCost(light, piled),
            with_overhead.CalcCost(light, single_heavy) -
                no_overhead.CalcCost(light, single_heavy));
}

TEST(MakeRouterTest, BuildsEveryPolicy) {
  const auto config = model::TimingConfig::Get(ModelKind::kSdxl);
  for (const RoutePolicy policy :
       {RoutePolicy::kRoundRobin, RoutePolicy::kFirstFit,
        RoutePolicy::kRequestCount, RoutePolicy::kTokenCount,
        RoutePolicy::kMaskAware}) {
    auto router = MakeRouter(policy, config, ComputeMode::kMaskAwareY);
    ASSERT_NE(router, nullptr) << ToString(policy);
    std::vector<WorkerStatus> statuses = {MakeStatus(0, {})};
    EXPECT_EQ(router->Route(MakeRequest(0.2), statuses), 0);
  }
}

}  // namespace
}  // namespace flashps::sched
