// Cache-tier RPC units: the cache frame codec (v2: encoded matrices),
// the CacheNode store semantics (encoded residency, admission policy),
// the CacheClient whole-record transfer over a loopback TcpServer in
// service mode, and the RemoteActivationStore ladder (LRU front,
// single-flight, miss-publish, fallback, circuit breaker).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/cache/remote_store.h"
#include "src/net/cache_client.h"
#include "src/net/cache_node.h"
#include "src/net/tcp_server.h"
#include "src/tensor/quant.h"

namespace flashps::net {
namespace {

// Pulls `"key":<integer>` out of a flat metrics JSON string.
uint64_t JsonCounter(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    return ~0ull;
  }
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

Matrix TestMatrix(int rows, int cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.FillNormal(rng, 1.0f);
  return m;
}

CacheKey TestKey(int template_id = 7, int step = 1, int block = 2,
                 uint8_t kind = kCacheKindY) {
  CacheKey key;
  key.template_id = template_id;
  key.step = step;
  key.block = block;
  key.kind = kind;
  return key;
}

ParsedFrame Parse(const std::vector<uint8_t>& bytes) {
  ParsedFrame frame;
  size_t consumed = 0;
  EXPECT_EQ(TryParseFrame(bytes.data(), bytes.size(), &frame, &consumed),
            WireError::kOk);
  EXPECT_EQ(consumed, bytes.size());
  return frame;
}

bool MatricesEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         LatentChecksum(a) == LatentChecksum(b);
}

// Wire matrices travel encoded; equality to a local Matrix means
// decode-then-compare.
bool DecodedEqual(const quant::EncodedMatrix& e, const Matrix& m) {
  Matrix decoded;
  return quant::Decode(e, &decoded, nullptr) && MatricesEqual(decoded, m);
}

bool RecordsEqual(const model::ActivationRecord& a,
                  const model::ActivationRecord& b) {
  if (a.steps.size() != b.steps.size()) return false;
  for (size_t s = 0; s < a.steps.size(); ++s) {
    const auto& as = a.steps[s];
    const auto& bs = b.steps[s];
    if (as.y.size() != bs.y.size() || as.k.size() != bs.k.size() ||
        as.v.size() != bs.v.size()) {
      return false;
    }
    for (size_t i = 0; i < as.y.size(); ++i) {
      if (!MatricesEqual(as.y[i], bs.y[i])) return false;
    }
    for (size_t i = 0; i < as.k.size(); ++i) {
      if (!MatricesEqual(as.k[i], bs.k[i])) return false;
    }
    for (size_t i = 0; i < as.v.size(); ++i) {
      if (!MatricesEqual(as.v[i], bs.v[i])) return false;
    }
  }
  return true;
}

// --- codec ----------------------------------------------------------------

TEST(CacheRpcWireTest, FetchRoundTrip) {
  const CacheKey key = TestKey(42, 3, 1, kCacheKindK);
  const ParsedFrame frame = Parse(EncodeCacheFetch(99, key));
  EXPECT_EQ(frame.type(), FrameType::kCacheFetch);
  EXPECT_EQ(frame.header.seq, 99u);
  CacheFetchBody body;
  std::string error;
  ASSERT_TRUE(DecodeCacheFetch(frame, &body, &error)) << error;
  EXPECT_EQ(body.key, key);
}

TEST(CacheRpcWireTest, PutRoundTripCarriesChecksum) {
  const Matrix m = TestMatrix(6, 5, 1);
  const ParsedFrame frame = Parse(EncodeCachePut(7, TestKey(), m));
  CachePutBody body;
  std::string error;
  ASSERT_TRUE(DecodeCachePut(frame, &body, &error)) << error;
  EXPECT_EQ(body.key, TestKey());
  EXPECT_EQ(body.data.dtype, quant::Dtype::kF32);
  EXPECT_EQ(body.checksum, EncodedChecksum(body.data));
  EXPECT_TRUE(DecodedEqual(body.data, m));
}

TEST(CacheRpcWireTest, CompressedPutRoundTripsItsEncoding) {
  const Matrix m = TestMatrix(6, 5, 1);
  for (const quant::Dtype dtype : {quant::Dtype::kF16, quant::Dtype::kI8}) {
    const quant::EncodedMatrix encoded = quant::Encode(m, dtype);
    const ParsedFrame frame = Parse(EncodeCachePut(7, TestKey(), encoded));
    CachePutBody body;
    std::string error;
    ASSERT_TRUE(DecodeCachePut(frame, &body, &error)) << error;
    EXPECT_EQ(body.data.dtype, dtype);
    EXPECT_EQ(body.data.payload, encoded.payload);
    EXPECT_EQ(body.data.scales, encoded.scales);
    EXPECT_EQ(body.checksum, EncodedChecksum(encoded));
  }
}

TEST(CacheRpcWireTest, HitRoundTripWithPayload) {
  const Matrix m = TestMatrix(4, 4, 2);
  const quant::EncodedMatrix encoded = quant::Encode(m, quant::Dtype::kF32);
  const ParsedFrame frame =
      Parse(EncodeCacheHit(3, TestKey(), EncodedChecksum(encoded), &encoded));
  CacheHitBody body;
  std::string error;
  ASSERT_TRUE(DecodeCacheHit(frame, &body, &error)) << error;
  EXPECT_TRUE(body.has_payload());
  EXPECT_TRUE(DecodedEqual(body.data, m));
}

TEST(CacheRpcWireTest, HitRoundTripPutAckHasNoPayload) {
  const ParsedFrame frame =
      Parse(EncodeCacheHit(3, TestKey(), 0xabcdu, nullptr));
  CacheHitBody body;
  std::string error;
  ASSERT_TRUE(DecodeCacheHit(frame, &body, &error)) << error;
  EXPECT_FALSE(body.has_payload());
  EXPECT_EQ(body.checksum, 0xabcdu);
}

TEST(CacheRpcWireTest, MissRoundTrip) {
  const ParsedFrame frame = Parse(EncodeCacheMiss(11, TestKey(5, 0, 0)));
  CacheMissBody body;
  ASSERT_TRUE(DecodeCacheMiss(frame, &body));
  EXPECT_EQ(body.key, TestKey(5, 0, 0));
}

TEST(CacheRpcWireTest, CorruptedPutPayloadFailsItsChecksum) {
  const Matrix m = TestMatrix(6, 5, 3);
  std::vector<uint8_t> bytes = EncodeCachePut(7, TestKey(), m);
  bytes.back() ^= 0x01;  // Flip one bit of the last float.
  const ParsedFrame frame = Parse(bytes);
  CachePutBody body;
  std::string error;
  EXPECT_FALSE(DecodeCachePut(frame, &body, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(CacheRpcWireTest, TrailingBytesRejected) {
  const std::vector<uint8_t> encoded = EncodeCacheFetch(1, TestKey());
  std::vector<uint8_t> payload(encoded.begin() + kFrameHeaderBytes,
                               encoded.end());
  payload.push_back(0);  // One stray byte after the key.
  const ParsedFrame frame = Parse(EncodeFrame(FrameType::kCacheFetch, 1,
                                              payload));
  CacheFetchBody body;
  std::string error;
  EXPECT_FALSE(DecodeCacheFetch(frame, &body, &error));
}

TEST(CacheRpcWireTest, NegativeKeyFieldsRejected) {
  const ParsedFrame frame = Parse(EncodeCacheFetch(1, TestKey(-1, 0, 0)));
  CacheFetchBody body;
  std::string error;
  EXPECT_FALSE(DecodeCacheFetch(frame, &body, &error));
}

// --- decoder hardening ----------------------------------------------------
//
// Offsets inside a kCachePut payload: key (13) + checksum (8) + rows u32 +
// cols u32 + dtype u8 + scale_count u32, then scale bits and raw bytes.
constexpr size_t kPutDtypeOffset = 13 + 8 + 4 + 4;
constexpr size_t kPutScaleCountOffset = kPutDtypeOffset + 1;

std::vector<uint8_t> PutPayload(const std::vector<uint8_t>& frame_bytes) {
  return std::vector<uint8_t>(frame_bytes.begin() + kFrameHeaderBytes,
                              frame_bytes.end());
}

TEST(CacheRpcWireTest, TruncatedPutPayloadRejectedAtEveryBoundary) {
  const std::vector<uint8_t> payload =
      PutPayload(EncodeCachePut(1, TestKey(), TestMatrix(3, 4, 8)));
  // Cut mid-key, mid-checksum, mid-matrix-header, and one byte short of
  // the raw payload: every truncation must reject cleanly, never read
  // past the end.
  for (const size_t keep :
       {size_t{0}, size_t{5}, size_t{12}, size_t{20}, kPutDtypeOffset,
        kPutScaleCountOffset + 2, payload.size() - 1}) {
    const std::vector<uint8_t> cut(payload.begin(),
                                   payload.begin() + static_cast<long>(keep));
    const ParsedFrame frame =
        Parse(EncodeFrame(FrameType::kCachePut, 1, cut));
    CachePutBody body;
    std::string error;
    EXPECT_FALSE(DecodeCachePut(frame, &body, &error)) << "keep=" << keep;
  }
}

TEST(CacheRpcWireTest, UnknownDtypeTagRejected) {
  std::vector<uint8_t> payload =
      PutPayload(EncodeCachePut(1, TestKey(), TestMatrix(3, 4, 9)));
  payload[kPutDtypeOffset] = 7;  // No such encoding.
  const ParsedFrame frame =
      Parse(EncodeFrame(FrameType::kCachePut, 1, payload));
  CachePutBody body;
  std::string error;
  EXPECT_FALSE(DecodeCachePut(frame, &body, &error));
  EXPECT_NE(error.find("dtype"), std::string::npos) << error;
}

TEST(CacheRpcWireTest, ScaleCountMismatchRejected) {
  // An f32 matrix declares zero scales; claiming one must be rejected
  // before any scale bytes are interpreted.
  std::vector<uint8_t> payload =
      PutPayload(EncodeCachePut(1, TestKey(), TestMatrix(3, 4, 10)));
  payload[kPutScaleCountOffset] = 1;
  const ParsedFrame frame =
      Parse(EncodeFrame(FrameType::kCachePut, 1, payload));
  CachePutBody body;
  std::string error;
  EXPECT_FALSE(DecodeCachePut(frame, &body, &error));
}

TEST(CacheRpcWireTest, DtypeLengthComboMismatchRejected) {
  // An i8 matrix re-tagged as f16 leaves the declared per-row scales and
  // byte count inconsistent with the claimed dtype.
  const quant::EncodedMatrix encoded =
      quant::Encode(TestMatrix(3, 4, 11), quant::Dtype::kI8);
  std::vector<uint8_t> payload =
      PutPayload(EncodeCachePut(1, TestKey(), encoded));
  payload[kPutDtypeOffset] = static_cast<uint8_t>(quant::Dtype::kF16);
  const ParsedFrame frame =
      Parse(EncodeFrame(FrameType::kCachePut, 1, payload));
  CachePutBody body;
  std::string error;
  EXPECT_FALSE(DecodeCachePut(frame, &body, &error));
}

// --- node -----------------------------------------------------------------

TEST(CacheRpcNodeTest, PutThenFetchHitsWithSameBytes) {
  CacheNode node;
  const Matrix m = TestMatrix(8, 6, 4);
  const CacheKey key = TestKey();

  InlineReply ack = node.Handle(Parse(EncodeCachePut(1, key, m)));
  EXPECT_FALSE(ack.close_connection);
  CacheHitBody ack_body;
  std::string error;
  ASSERT_TRUE(DecodeCacheHit(Parse(ack.frame), &ack_body, &error)) << error;
  EXPECT_FALSE(ack_body.has_payload());
  EXPECT_EQ(ack_body.checksum,
            EncodedChecksum(quant::Encode(m, quant::Dtype::kF32)));

  InlineReply hit = node.Handle(Parse(EncodeCacheFetch(2, key)));
  CacheHitBody hit_body;
  ASSERT_TRUE(DecodeCacheHit(Parse(hit.frame), &hit_body, &error)) << error;
  EXPECT_TRUE(DecodedEqual(hit_body.data, m));

  const CacheNodeStats stats = node.Stats();
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.fetch_hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes_served, m.bytes());
}

TEST(CacheRpcNodeTest, FetchMissForAbsentKey) {
  CacheNode node;
  InlineReply reply = node.Handle(Parse(EncodeCacheFetch(1, TestKey())));
  CacheMissBody body;
  ASSERT_TRUE(DecodeCacheMiss(Parse(reply.frame), &body));
  EXPECT_EQ(body.key, TestKey());
  EXPECT_EQ(node.Stats().fetch_misses, 1u);
}

TEST(CacheRpcNodeTest, CorruptedPutIsRejectedNotStored) {
  CacheNode node;
  std::vector<uint8_t> bytes = EncodeCachePut(1, TestKey(), TestMatrix(4, 4, 5));
  bytes.back() ^= 0x01;
  InlineReply reply = node.Handle(Parse(bytes));
  EXPECT_TRUE(reply.close_connection);
  WireErrorBody error_body;
  ASSERT_TRUE(DecodeError(Parse(reply.frame), &error_body));
  EXPECT_EQ(static_cast<WireError>(error_body.code),
            WireError::kMalformedPayload);
  EXPECT_FALSE(node.Contains(TestKey()));
  EXPECT_EQ(node.Stats().bad_frames, 1u);
}

TEST(CacheRpcNodeTest, SubmitFrameIsWrongDirection) {
  CacheNode node;
  WireRequest request;
  InlineReply reply = node.Handle(Parse(EncodeSubmit(1, request)));
  EXPECT_TRUE(reply.close_connection);
  WireErrorBody error_body;
  ASSERT_TRUE(DecodeError(Parse(reply.frame), &error_body));
  EXPECT_EQ(static_cast<WireError>(error_body.code), WireError::kBadType);
}

TEST(CacheRpcNodeTest, LruEvictsUnderByteCap) {
  const Matrix m = TestMatrix(8, 8, 6);  // 256 bytes each.
  CacheNodeOptions options;
  options.max_bytes = 2 * m.bytes();
  CacheNode node(options);
  node.Handle(Parse(EncodeCachePut(1, TestKey(1, 0, 0), m)));
  node.Handle(Parse(EncodeCachePut(2, TestKey(2, 0, 0), m)));
  // Touch key 1 so key 2 is the LRU victim.
  node.Handle(Parse(EncodeCacheFetch(3, TestKey(1, 0, 0))));
  node.Handle(Parse(EncodeCachePut(4, TestKey(3, 0, 0), m)));
  EXPECT_TRUE(node.Contains(TestKey(1, 0, 0)));
  EXPECT_FALSE(node.Contains(TestKey(2, 0, 0)));
  EXPECT_TRUE(node.Contains(TestKey(3, 0, 0)));
  const CacheNodeStats stats = node.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.resident_bytes, options.max_bytes);
}

TEST(CacheRpcNodeTest, CompressedPutsRestAndServeEncoded) {
  CacheNode node;  // Default admission: staged, i.e. every encoding.
  const Matrix m = TestMatrix(8, 6, 12);
  const quant::EncodedMatrix f16 = quant::Encode(m, quant::Dtype::kF16);
  const quant::EncodedMatrix i8 = quant::Encode(m, quant::Dtype::kI8);
  node.Handle(Parse(EncodeCachePut(1, TestKey(1, 0, 0), f16)));
  node.Handle(Parse(EncodeCachePut(2, TestKey(2, 0, 0), i8)));
  const CacheNodeStats stats = node.Stats();
  EXPECT_EQ(stats.entries_f16, 1u);
  EXPECT_EQ(stats.entries_i8, 1u);
  EXPECT_EQ(stats.resident_bytes, f16.StoredBytes() + i8.StoredBytes());
  // A fetch serves the entry exactly as it rests — same dtype, same bytes.
  InlineReply hit = node.Handle(Parse(EncodeCacheFetch(3, TestKey(1, 0, 0))));
  CacheHitBody body;
  std::string error;
  ASSERT_TRUE(DecodeCacheHit(Parse(hit.frame), &body, &error)) << error;
  EXPECT_EQ(body.data.dtype, quant::Dtype::kF16);
  EXPECT_EQ(body.data.payload, f16.payload);
}

TEST(CacheRpcNodeTest, LosslessAdmitRejectsCompressedPuts) {
  CacheNodeOptions options;
  options.admit = quant::PrecisionMode::kLossless;
  CacheNode node(options);
  const Matrix m = TestMatrix(4, 4, 13);
  InlineReply reply = node.Handle(Parse(
      EncodeCachePut(1, TestKey(), quant::Encode(m, quant::Dtype::kF16))));
  EXPECT_TRUE(reply.close_connection);
  WireErrorBody error_body;
  ASSERT_TRUE(DecodeError(Parse(reply.frame), &error_body));
  EXPECT_EQ(static_cast<WireError>(error_body.code),
            WireError::kMalformedPayload);
  EXPECT_FALSE(node.Contains(TestKey()));
  EXPECT_EQ(node.Stats().precision_rejects, 1u);
  // A lossless f32 put still lands on the same node.
  InlineReply ack = node.Handle(Parse(EncodeCachePut(2, TestKey(), m)));
  EXPECT_FALSE(ack.close_connection);
  EXPECT_TRUE(node.Contains(TestKey()));
}

TEST(CacheRpcNodeTest, ByteCapCountsCompressedBytes) {
  const Matrix m = TestMatrix(8, 8, 14);  // 256 B as f32, 128 B as f16.
  CacheNodeOptions options;
  options.max_bytes = 2 * m.bytes();
  CacheNode node(options);
  // Four f16 entries fit where only two f32 entries would.
  for (int t = 0; t < 4; ++t) {
    node.Handle(Parse(EncodeCachePut(static_cast<uint64_t>(t + 1),
                                     TestKey(t, 0, 0),
                                     quant::Encode(m, quant::Dtype::kF16))));
  }
  EXPECT_EQ(node.Stats().entries, 4u);
  EXPECT_EQ(node.Stats().evictions, 0u);
}

TEST(CacheRpcNodeTest, MetricsJsonCarriesCounters) {
  CacheNode node;
  const Matrix m = TestMatrix(4, 4, 7);
  node.Handle(Parse(EncodeCachePut(1, TestKey(), m)));
  node.Handle(Parse(EncodeCacheFetch(2, TestKey())));
  node.Handle(Parse(EncodeCacheFetch(3, TestKey(9, 9, 9))));
  const std::string json = node.MetricsJson();
  EXPECT_EQ(JsonCounter(json, "puts"), 1u);
  EXPECT_EQ(JsonCounter(json, "fetch_hits"), 1u);
  EXPECT_EQ(JsonCounter(json, "fetch_misses"), 1u);
  EXPECT_EQ(JsonCounter(json, "entries"), 1u);
}

// --- client over loopback -------------------------------------------------

class CacheRpcClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<TcpServer>(node_.Service());
    ASSERT_TRUE(server_->Start());
  }
  void TearDown() override { server_->Stop(); }

  CacheNode node_;
  std::unique_ptr<TcpServer> server_;
};

TEST_F(CacheRpcClientTest, PutRecordThenFetchRecordIsBitwiseIdentical) {
  model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  numerics.num_steps = 2;
  model::DiffusionModel model(numerics);
  const model::ActivationRecord record = model.Register(5, /*record_kv=*/true);

  CacheClient client("127.0.0.1", server_->port());
  PutRecordResult put = client.PutRecord(5, record);
  ASSERT_TRUE(put.transport_ok) << ToString(client.last_error());
  const uint64_t matrices =
      static_cast<uint64_t>(numerics.num_steps) * numerics.num_blocks * 3;
  EXPECT_EQ(put.puts, matrices);

  FetchRecordResult fetched =
      client.FetchRecord(5, numerics.num_steps, numerics.num_blocks,
                         /*want_kv=*/true);
  ASSERT_TRUE(fetched.transport_ok) << ToString(client.last_error());
  ASSERT_TRUE(fetched.complete);
  EXPECT_EQ(fetched.hits, matrices);
  EXPECT_EQ(fetched.misses, 0u);
  ASSERT_NE(fetched.record, nullptr);
  EXPECT_TRUE(RecordsEqual(*fetched.record, record));
  EXPECT_EQ(fetched.bytes, put.bytes);
}

TEST_F(CacheRpcClientTest, FetchOfAbsentRecordMissesEveryKey) {
  CacheClient client("127.0.0.1", server_->port());
  FetchRecordResult fetched = client.FetchRecord(1, 2, 3, /*want_kv=*/false);
  ASSERT_TRUE(fetched.transport_ok);
  EXPECT_FALSE(fetched.complete);
  EXPECT_EQ(fetched.record, nullptr);
  EXPECT_EQ(fetched.misses, 6u);
  EXPECT_EQ(fetched.hits, 0u);
}

TEST_F(CacheRpcClientTest, KvFetchOfYOnlyRecordIsIncomplete) {
  model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  numerics.num_steps = 2;
  model::DiffusionModel model(numerics);
  const model::ActivationRecord record = model.Register(5, /*record_kv=*/false);

  CacheClient client("127.0.0.1", server_->port());
  ASSERT_TRUE(client.PutRecord(5, record).transport_ok);
  FetchRecordResult fetched =
      client.FetchRecord(5, numerics.num_steps, numerics.num_blocks,
                         /*want_kv=*/true);
  ASSERT_TRUE(fetched.transport_ok);
  EXPECT_FALSE(fetched.complete);
  const uint64_t per_kind =
      static_cast<uint64_t>(numerics.num_steps) * numerics.num_blocks;
  EXPECT_EQ(fetched.hits, per_kind);        // Y resident.
  EXPECT_EQ(fetched.misses, 2 * per_kind);  // K and V absent.
}

TEST_F(CacheRpcClientTest, MetricsQueryReconcilesWithClientCounts) {
  model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  numerics.num_steps = 2;
  model::DiffusionModel model(numerics);
  CacheClient client("127.0.0.1", server_->port());
  PutRecordResult put =
      client.PutRecord(9, model.Register(9, /*record_kv=*/false));
  ASSERT_TRUE(put.transport_ok);
  FetchRecordResult fetched =
      client.FetchRecord(9, numerics.num_steps, numerics.num_blocks, false);
  ASSERT_TRUE(fetched.complete);

  auto metrics = client.QueryMetrics();
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(JsonCounter(*metrics, "puts"), put.puts);
  EXPECT_EQ(JsonCounter(*metrics, "fetch_hits"), fetched.hits);
  EXPECT_EQ(JsonCounter(*metrics, "bytes_served"), fetched.bytes);
  EXPECT_EQ(JsonCounter(*metrics, "bytes_stored"), put.bytes);
}

TEST_F(CacheRpcClientTest, OversizedPutFailsClientSideBeforeSocket) {
  // 1200 x 1024 f32 is ~4.9 MB raw — over the 4 MiB frame cap.
  model::ActivationRecord record;
  record.steps.resize(1);
  record.steps[0].y.push_back(Matrix(1200, 1024));

  CacheClient client("127.0.0.1", server_->port());
  PutRecordResult put = client.PutRecord(1, record);
  EXPECT_FALSE(put.transport_ok);
  EXPECT_EQ(client.last_error(), WireError::kOversizedFrame);
  EXPECT_EQ(put.puts, 0u);
  EXPECT_EQ(put.wire_bytes, 0u);
  // Nothing hit the wire: the node saw neither a put nor a bad frame...
  EXPECT_EQ(node_.Stats().puts, 0u);
  EXPECT_EQ(node_.Stats().bad_frames, 0u);
  // ...and the same connection still carries a normal-sized record.
  model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  numerics.num_steps = 1;
  model::DiffusionModel model(numerics);
  EXPECT_TRUE(client.PutRecord(2, model.Register(2, false)).transport_ok)
      << ToString(client.last_error());
}

TEST_F(CacheRpcClientTest, Fp16RecordRoundTripsWithinTolerance) {
  model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  numerics.num_steps = 2;
  model::DiffusionModel model(numerics);
  const model::ActivationRecord record = model.Register(5, false);

  CacheClient client("127.0.0.1", server_->port());
  PutRecordResult put =
      client.PutRecord(5, record, quant::PrecisionMode::kF16);
  ASSERT_TRUE(put.transport_ok) << ToString(client.last_error());
  EXPECT_EQ(put.wire_bytes * 2, put.bytes);  // f16 is exactly half.
  EXPECT_EQ(node_.Stats().bytes_stored, put.wire_bytes);

  FetchRecordResult fetched =
      client.FetchRecord(5, numerics.num_steps, numerics.num_blocks, false);
  ASSERT_TRUE(fetched.transport_ok);
  ASSERT_TRUE(fetched.complete);
  EXPECT_EQ(fetched.wire_bytes, put.wire_bytes);
  EXPECT_EQ(fetched.bytes, put.bytes);  // Decoded back to full f32.
  // Round-to-nearest f16 error is bounded by ~2^-11 at each magnitude.
  float max_rel = 0.0f;
  for (size_t st = 0; st < record.steps.size(); ++st) {
    for (size_t b = 0; b < record.steps[st].y.size(); ++b) {
      const Matrix& want = record.steps[st].y[b];
      const Matrix& got = fetched.record->steps[st].y[b];
      for (size_t i = 0; i < want.size(); ++i) {
        max_rel = std::max(
            max_rel, std::abs(want.data()[i] - got.data()[i]) /
                         std::max(1.0f, std::abs(want.data()[i])));
      }
    }
  }
  EXPECT_LT(max_rel, 1.0f / 2048.0f);
}

TEST_F(CacheRpcClientTest, StagedPutSplitsDtypesByStep) {
  model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  numerics.num_steps = 4;
  model::DiffusionModel model(numerics);
  CacheClient client("127.0.0.1", server_->port());
  ASSERT_TRUE(client
                  .PutRecord(6, model.Register(6, false),
                             quant::PrecisionMode::kStaged)
                  .transport_ok);
  // Steps 0-1 travel f16, steps 2-3 travel i8 — resident dtypes prove it.
  const CacheNodeStats stats = node_.Stats();
  const uint64_t per_half = 2ull * numerics.num_blocks;
  EXPECT_EQ(stats.entries_f16, per_half);
  EXPECT_EQ(stats.entries_i8, per_half);
  EXPECT_EQ(stats.entries_f32, 0u);
}

TEST_F(CacheRpcClientTest, CompressedPutRejectedByLosslessNode) {
  CacheNodeOptions strict;
  strict.admit = quant::PrecisionMode::kLossless;
  CacheNode lossless_node(strict);
  TcpServer strict_server(lossless_node.Service());
  ASSERT_TRUE(strict_server.Start());

  model::NumericsConfig numerics = model::NumericsConfig::ForTests();
  numerics.num_steps = 1;
  model::DiffusionModel model(numerics);
  CacheClient client("127.0.0.1", strict_server.port());
  PutRecordResult put = client.PutRecord(3, model.Register(3, false),
                                         quant::PrecisionMode::kF16);
  EXPECT_FALSE(put.transport_ok);
  // The node rejects the first put and hangs up, so the client observes
  // either the typed error frame or the hangup, depending on the race.
  EXPECT_TRUE(client.last_error() == WireError::kMalformedPayload ||
              client.last_error() == WireError::kConnectionClosed)
      << ToString(client.last_error());
  EXPECT_GE(lossless_node.Stats().precision_rejects, 1u);
  EXPECT_EQ(lossless_node.Stats().puts, 0u);
  strict_server.Stop();
}

TEST_F(CacheRpcClientTest, ConnectToDeadPortFailsAfterBoundedRetries) {
  server_->Stop();
  CacheClientOptions options;
  options.connect_attempts = 2;
  options.connect_backoff = std::chrono::milliseconds(1);
  CacheClient client("127.0.0.1", server_->port(), options);
  FetchRecordResult fetched = client.FetchRecord(1, 1, 1, false);
  EXPECT_FALSE(fetched.transport_ok);
  EXPECT_EQ(client.last_error(), WireError::kConnectionClosed);
}

// --- remote store ---------------------------------------------------------

class CacheRpcRemoteStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<TcpServer>(node_.Service());
    ASSERT_TRUE(server_->Start());
    numerics_ = model::NumericsConfig::ForTests();
    numerics_.num_steps = 2;
    model_ = std::make_unique<model::DiffusionModel>(numerics_);
  }
  void TearDown() override { server_->Stop(); }

  cache::RemoteStoreOptions StoreOptions() {
    cache::RemoteStoreOptions options;
    options.host = "127.0.0.1";
    options.port = server_->port();
    options.connect_attempts = 1;
    options.connect_backoff = std::chrono::milliseconds(1);
    return options;
  }

  CacheNode node_;
  std::unique_ptr<TcpServer> server_;
  model::NumericsConfig numerics_;
  std::unique_ptr<model::DiffusionModel> model_;
};

TEST_F(CacheRpcRemoteStoreTest, MissRegistersLocallyAndPublishes) {
  cache::RemoteActivationStore store(StoreOptions());
  auto record = store.Acquire(*model_, 3, /*record_kv=*/false);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(RecordsEqual(*record, model_->Register(3, false)));

  const cache::RemoteStoreStats stats = store.Stats();
  EXPECT_EQ(stats.remote_misses, 1u);
  EXPECT_EQ(stats.local_registrations, 1u);
  EXPECT_EQ(stats.puts_ok, 1u);
  EXPECT_EQ(stats.fallbacks, 0u);
  // The record is now resident on the node.
  EXPECT_EQ(node_.Stats().puts,
            static_cast<uint64_t>(numerics_.num_steps) * numerics_.num_blocks);
  EXPECT_EQ(node_.Stats().bytes_stored, stats.remote_bytes_put);
}

TEST_F(CacheRpcRemoteStoreTest, SecondStoreFetchesRemotelyBitwise) {
  cache::RemoteActivationStore first(StoreOptions());
  auto published = first.Acquire(*model_, 3, false);

  // A fresh store (fresh LRU front) — like a new worker process joining.
  cache::RemoteActivationStore second(StoreOptions());
  auto fetched = second.Acquire(*model_, 3, false);
  ASSERT_NE(fetched, nullptr);
  EXPECT_TRUE(RecordsEqual(*fetched, *published));

  const cache::RemoteStoreStats stats = second.Stats();
  EXPECT_EQ(stats.remote_hits, 1u);
  EXPECT_EQ(stats.remote_misses, 0u);
  EXPECT_EQ(stats.local_registrations, 0u);
  EXPECT_EQ(stats.remote_bytes_fetched, node_.Stats().bytes_served);
  // Lossless moves exactly what it decodes.
  EXPECT_EQ(stats.remote_wire_bytes_fetched, stats.remote_bytes_fetched);
  EXPECT_GT(stats.fetch_p99_us, 0.0);
}

TEST_F(CacheRpcRemoteStoreTest, Fp16StoreMovesFewerWireBytes) {
  cache::RemoteStoreOptions options = StoreOptions();
  options.precision = quant::PrecisionMode::kF16;
  cache::RemoteActivationStore first(options);
  ASSERT_NE(first.Acquire(*model_, 3, false), nullptr);
  const cache::RemoteStoreStats cold = first.Stats();
  EXPECT_EQ(cold.remote_wire_bytes_put * 2, cold.remote_bytes_put);
  EXPECT_EQ(node_.Stats().bytes_stored, cold.remote_wire_bytes_put);

  cache::RemoteActivationStore second(options);
  ASSERT_NE(second.Acquire(*model_, 3, false), nullptr);
  const cache::RemoteStoreStats warm = second.Stats();
  EXPECT_EQ(warm.remote_hits, 1u);
  EXPECT_EQ(warm.remote_wire_bytes_fetched * 2, warm.remote_bytes_fetched);

  const std::string json = second.MetricsJson();
  EXPECT_EQ(JsonCounter(json, "remote_wire_bytes_fetched"),
            warm.remote_wire_bytes_fetched);
  EXPECT_EQ(JsonCounter(json, "remote_wire_bytes_put"), 0u);
  EXPECT_NE(json.find("\"precision\":\"fp16\""), std::string::npos);
}

TEST_F(CacheRpcRemoteStoreTest, FrontHitCostsNoRpc) {
  cache::RemoteActivationStore store(StoreOptions());
  auto first = store.Acquire(*model_, 3, false);
  const uint64_t fetches_after_first =
      node_.Stats().fetch_hits + node_.Stats().fetch_misses;
  auto second = store.Acquire(*model_, 3, false);
  EXPECT_EQ(first.get(), second.get());  // Same pinned record.
  EXPECT_EQ(store.Stats().front_hits, 1u);
  EXPECT_EQ(node_.Stats().fetch_hits + node_.Stats().fetch_misses,
            fetches_after_first);
}

TEST_F(CacheRpcRemoteStoreTest, SingleFlightCoalescesConcurrentAcquires) {
  cache::RemoteActivationStore store(StoreOptions());
  constexpr int kThreads = 4;
  std::vector<std::shared_ptr<const model::ActivationRecord>> records(
      kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&, i] { records[i] = store.Acquire(*model_, 11, false); });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(records[0].get(), records[i].get());
  }
  const cache::RemoteStoreStats stats = store.Stats();
  // Exactly one thread went remote; the rest either joined its flight or
  // hit the front after it completed.
  EXPECT_EQ(stats.remote_hits + stats.remote_misses, 1u);
  EXPECT_EQ(stats.front_hits + stats.singleflight_waits,
            static_cast<uint64_t>(kThreads - 1));
}

TEST_F(CacheRpcRemoteStoreTest, KvUpgradeReplacesYOnlyFrontEntry) {
  cache::RemoteActivationStore store(StoreOptions());
  auto y_only = store.Acquire(*model_, 3, /*record_kv=*/false);
  EXPECT_FALSE(y_only->has_kv());
  auto with_kv = store.Acquire(*model_, 3, /*record_kv=*/true);
  EXPECT_TRUE(with_kv->has_kv());
  // And the upgraded record now satisfies Y-only acquires from the front.
  auto again = store.Acquire(*model_, 3, /*record_kv=*/false);
  EXPECT_EQ(again.get(), with_kv.get());
}

TEST_F(CacheRpcRemoteStoreTest, UnreachableNodeFallsBackLocally) {
  cache::RemoteStoreOptions options = StoreOptions();
  server_->Stop();  // Nothing listens on the port now.
  cache::RemoteActivationStore store(options);
  auto record = store.Acquire(*model_, 3, false);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(RecordsEqual(*record, model_->Register(3, false)));
  const cache::RemoteStoreStats stats = store.Stats();
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.local_registrations, 1u);
  EXPECT_EQ(stats.remote_hits, 0u);
}

TEST_F(CacheRpcRemoteStoreTest, CircuitBreakerSkipsFetchWhileOpen) {
  cache::RemoteStoreOptions options = StoreOptions();
  options.max_consecutive_failures = 1;
  options.degrade_cooldown = std::chrono::hours(1);
  server_->Stop();
  cache::RemoteActivationStore store(options);
  store.Acquire(*model_, 1, false);  // Trips the breaker.
  store.Acquire(*model_, 2, false);  // Served while the circuit is open.
  const cache::RemoteStoreStats stats = store.Stats();
  EXPECT_EQ(stats.degrade_trips, 1u);
  EXPECT_EQ(stats.fallbacks, 2u);
  EXPECT_EQ(stats.local_registrations, 2u);
}

// --- prefetch pipeline ----------------------------------------------------

// Polls until `done` holds or ~2 s pass; the prefetch pipeline completes in
// microseconds on loopback, so the deadline only bounds a broken build.
template <typename Predicate>
bool WaitFor(Predicate done,
             std::chrono::milliseconds timeout = std::chrono::seconds(2)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST_F(CacheRpcRemoteStoreTest, PrefetchWarmsStagingAndAcquireCoalesces) {
  // Publish template 3 so the prefetch hits remotely.
  CacheClient publisher("127.0.0.1", server_->port());
  ASSERT_TRUE(
      publisher.PutRecord(3, model_->Register(3, false)).transport_ok);

  cache::RemoteStoreOptions options = StoreOptions();
  options.prefetch_workers = 1;
  cache::RemoteActivationStore store(options);
  store.Prefetch(*model_, 3, /*record_kv=*/false);
  ASSERT_TRUE(WaitFor([&] { return store.Stats().prefetch_remote_hits == 1; }));

  const uint64_t node_fetches_before =
      node_.Stats().fetch_hits + node_.Stats().fetch_misses;
  auto record = store.Acquire(*model_, 3, false);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(RecordsEqual(*record, model_->Register(3, false)));
  // The Acquire consumed the staged prefetch — no wire traffic of its own.
  EXPECT_EQ(node_.Stats().fetch_hits + node_.Stats().fetch_misses,
            node_fetches_before);
  const cache::RemoteStoreStats stats = store.Stats();
  EXPECT_EQ(stats.prefetch_issued, 1u);
  EXPECT_EQ(stats.prefetch_coalesced, 1u);
  EXPECT_EQ(stats.remote_hits, 0u);   // Foreground never fetched.
  EXPECT_EQ(stats.prefetch_staged, 0u);  // Consumed out of staging.
  EXPECT_GT(stats.prefetch_bytes_fetched, 0u);
  EXPECT_GT(stats.prefetch_p99_us, 0.0);
  // And the record now fronts like any other.
  auto again = store.Acquire(*model_, 3, false);
  EXPECT_EQ(again.get(), record.get());
  EXPECT_EQ(store.Stats().front_hits, 1u);
}

TEST_F(CacheRpcRemoteStoreTest, PrefetchRacingForegroundAcquireSingleFlights) {
  CacheClient publisher("127.0.0.1", server_->port());
  const model::ActivationRecord published = model_->Register(7, false);
  ASSERT_TRUE(publisher.PutRecord(7, published).transport_ok);
  const uint64_t record_matrices =
      static_cast<uint64_t>(numerics_.num_steps) * numerics_.num_blocks;

  cache::RemoteStoreOptions options = StoreOptions();
  options.prefetch_workers = 1;
  cache::RemoteActivationStore store(options);
  // The hint opens the flight synchronously, so the immediate foreground
  // Acquire joins it (or consumes its staged result) — never a second
  // fetch, no matter how the race lands.
  store.Prefetch(*model_, 7, /*record_kv=*/false);
  auto record = store.Acquire(*model_, 7, false);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(RecordsEqual(*record, published));

  const cache::RemoteStoreStats stats = store.Stats();
  EXPECT_EQ(stats.prefetch_issued, 1u);
  EXPECT_EQ(stats.prefetch_coalesced, 1u);
  EXPECT_EQ(stats.remote_hits, 0u);
  EXPECT_EQ(stats.singleflight_waits, 0u);
  // The node served the record exactly once.
  EXPECT_EQ(node_.Stats().fetch_hits, record_matrices);
}

TEST_F(CacheRpcRemoteStoreTest, PrefetchMissResolvesEmptyAndForegroundLadders) {
  // Nothing resident: the prefetch job cannot register locally (it has no
  // model), so it resolves its flight empty and the foreground Acquire
  // runs the miss ladder itself — register + publish, never a null record.
  cache::RemoteStoreOptions options = StoreOptions();
  options.prefetch_workers = 1;
  cache::RemoteActivationStore store(options);
  store.Prefetch(*model_, 4, /*record_kv=*/false);
  auto record = store.Acquire(*model_, 4, false);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(RecordsEqual(*record, model_->Register(4, false)));

  ASSERT_TRUE(WaitFor([&] { return store.Stats().prefetch_remote_misses == 1; }));
  const cache::RemoteStoreStats stats = store.Stats();
  EXPECT_EQ(stats.prefetch_issued, 1u);
  EXPECT_EQ(stats.prefetch_coalesced, 0u);  // The empty flight coalesced nobody.
  EXPECT_EQ(stats.remote_misses, 1u);
  EXPECT_EQ(stats.local_registrations, 1u);
  EXPECT_EQ(stats.puts_ok, 1u);
}

TEST_F(CacheRpcRemoteStoreTest, KilledNodeWithPrefetchesInFlightNeverHangs) {
  cache::RemoteStoreOptions options = StoreOptions();
  options.prefetch_workers = 2;
  server_->Stop();  // The node dies before any prefetch lands.
  cache::RemoteActivationStore store(options);
  constexpr int kTemplates = 4;
  for (int t = 0; t < kTemplates; ++t) {
    store.Prefetch(*model_, t, /*record_kv=*/false);
  }
  // Every Acquire still succeeds — dead prefetches resolve empty, the
  // foreground falls back to local registration (or rides the open
  // circuit straight there).
  for (int t = 0; t < kTemplates; ++t) {
    auto record = store.Acquire(*model_, t, false);
    ASSERT_NE(record, nullptr);
    EXPECT_TRUE(RecordsEqual(*record, model_->Register(t, false)));
  }
  const cache::RemoteStoreStats stats = store.Stats();
  EXPECT_EQ(stats.fallbacks, static_cast<uint64_t>(kTemplates));
  EXPECT_EQ(stats.local_registrations, static_cast<uint64_t>(kTemplates));
  EXPECT_EQ(stats.remote_hits, 0u);
  EXPECT_EQ(stats.prefetch_remote_hits, 0u);
  // Hints either died on the wire, were suppressed by the tripped
  // circuit, or were dropped/flushed — all of them are accounted for.
  EXPECT_EQ(stats.prefetch_issued + stats.prefetch_suppressed +
                stats.prefetch_dropped,
            static_cast<uint64_t>(kTemplates));
}

TEST_F(CacheRpcRemoteStoreTest, OpenCircuitSuppressesPrefetchAtIssue) {
  cache::RemoteStoreOptions options = StoreOptions();
  options.prefetch_workers = 1;
  options.max_consecutive_failures = 1;
  options.degrade_cooldown = std::chrono::hours(1);
  server_->Stop();
  cache::RemoteActivationStore store(options);
  store.Acquire(*model_, 1, false);  // Trips the breaker.
  ASSERT_EQ(store.Stats().degrade_trips, 1u);
  store.Prefetch(*model_, 2, /*record_kv=*/false);
  const cache::RemoteStoreStats stats = store.Stats();
  EXPECT_EQ(stats.prefetch_suppressed, 1u);
  EXPECT_EQ(stats.prefetch_issued, 0u);
}

TEST_F(CacheRpcRemoteStoreTest, RedundantPrefetchHintsAreDeduped) {
  cache::RemoteStoreOptions options = StoreOptions();
  options.prefetch_workers = 1;
  cache::RemoteActivationStore store(options);
  store.Acquire(*model_, 3, false);  // Front now holds template 3.
  store.Prefetch(*model_, 3, /*record_kv=*/false);
  const cache::RemoteStoreStats stats = store.Stats();
  EXPECT_EQ(stats.prefetch_redundant, 1u);
  EXPECT_EQ(stats.prefetch_issued, 0u);
}

TEST_F(CacheRpcRemoteStoreTest, MetricsJsonCarriesPrefetchCounters) {
  CacheClient publisher("127.0.0.1", server_->port());
  ASSERT_TRUE(
      publisher.PutRecord(5, model_->Register(5, false)).transport_ok);
  cache::RemoteStoreOptions options = StoreOptions();
  options.prefetch_workers = 1;
  cache::RemoteActivationStore store(options);
  store.Prefetch(*model_, 5, /*record_kv=*/false);
  ASSERT_TRUE(WaitFor([&] { return store.Stats().prefetch_remote_hits == 1; }));
  store.Acquire(*model_, 5, false);
  const std::string json = store.MetricsJson();
  EXPECT_EQ(JsonCounter(json, "prefetch_issued"), 1u);
  EXPECT_EQ(JsonCounter(json, "prefetch_coalesced"), 1u);
  EXPECT_EQ(JsonCounter(json, "prefetch_remote_hits"), 1u);
  EXPECT_EQ(JsonCounter(json, "prefetch_staged"), 0u);
  EXPECT_NE(json.find("\"prefetch_p99_us\":"), std::string::npos);
}

TEST_F(CacheRpcRemoteStoreTest, MetricsJsonCarriesTheLadderCounters) {
  cache::RemoteActivationStore store(StoreOptions());
  store.Acquire(*model_, 3, false);  // remote miss -> register + publish
  store.Acquire(*model_, 3, false);  // front hit
  const std::string json = store.MetricsJson();
  EXPECT_EQ(JsonCounter(json, "front_hits"), 1u);
  EXPECT_EQ(JsonCounter(json, "remote_misses"), 1u);
  EXPECT_EQ(JsonCounter(json, "puts_ok"), 1u);
  EXPECT_EQ(JsonCounter(json, "front_size"), 1u);
  EXPECT_NE(json.find("\"kind\":\"remote\""), std::string::npos);
}

}  // namespace
}  // namespace flashps::net
