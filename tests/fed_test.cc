// Unit coverage for the federated control plane (src/fed): registry
// health transitions driven by probe outcomes, profile loading from a
// node's MetricsJson splice, the dispatch-path circuit breaker, the
// cross-machine router over NodeSnapshots, and the policy/model plumbing
// the tier shares with src/sched.
//
// Fleet nodes are faked with service-mode TcpServers whose InlineService
// answers metrics queries with a canned MetricsJson — the registry only
// ever reads that frame, so a fake node exercises the real wire path
// (connect, optional auth, metrics round-trip) without spinning gateways.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/fed/fed_gateway.h"
#include "src/fed/fed_router.h"
#include "src/fed/node_registry.h"
#include "src/net/tcp_server.h"
#include "src/sched/latency_model.h"
#include "src/sched/scheduler.h"

namespace flashps::fed {
namespace {

constexpr char kFakeMetrics[] =
    "{\"submitted\":5,\"completed\":3,"
    "\"latency_model\":{\"compute_slope\":0.0015,"
    "\"compute_intercept\":0.0002,\"compute_r2\":0.99,"
    "\"load_slope\":1e-05,\"load_intercept\":1e-06,\"load_r2\":0.9,"
    "\"per_request_overhead_s\":0.01,\"mask_aware\":true,"
    "\"workers\":2,\"max_batch\":4}}";

// A fake fleet node: answers metrics queries with `json`, rejects
// everything else.
std::unique_ptr<net::TcpServer> StartFakeNode(std::string json,
                                              uint16_t port = 0,
                                              std::string auth_token = "") {
  net::InlineService service = [json](const net::ParsedFrame& frame) {
    net::InlineReply reply;
    if (frame.header.type ==
        static_cast<uint16_t>(net::FrameType::kMetricsQuery)) {
      reply.frame = net::EncodeMetricsReport(frame.header.seq, json);
    } else {
      reply.frame = net::EncodeError(frame.header.seq,
                                     net::WireError::kMalformedPayload,
                                     "fake node only serves metrics");
      reply.close_connection = true;
    }
    return reply;
  };
  net::TcpServerOptions options;
  options.port = port;
  options.auth_token = std::move(auth_token);
  auto server = std::make_unique<net::TcpServer>(service, options);
  EXPECT_TRUE(server->Start());
  return server;
}

NodeRegistryOptions FastProbeOptions() {
  NodeRegistryOptions options;
  options.probe_interval = std::chrono::milliseconds(50);
  options.probe_timeout = std::chrono::milliseconds(500);
  options.connect_attempts = 1;
  return options;
}

TEST(FedTest, ParseRoutePolicyRoundTripsEveryPolicy) {
  const sched::RoutePolicy all[] = {
      sched::RoutePolicy::kRoundRobin, sched::RoutePolicy::kFirstFit,
      sched::RoutePolicy::kRequestCount, sched::RoutePolicy::kTokenCount,
      sched::RoutePolicy::kMaskAware};
  for (sched::RoutePolicy policy : all) {
    sched::RoutePolicy parsed;
    ASSERT_TRUE(sched::ParseRoutePolicy(sched::ToString(policy), &parsed))
        << sched::ToString(policy);
    EXPECT_EQ(parsed, policy);
  }
  sched::RoutePolicy parsed = sched::RoutePolicy::kFirstFit;
  EXPECT_FALSE(sched::ParseRoutePolicy("bogus", &parsed));
  EXPECT_EQ(parsed, sched::RoutePolicy::kFirstFit);  // Untouched.
}

TEST(FedTest, LatencyModelFromFitsReproducesFittedModel) {
  const model::TimingConfig config =
      model::TimingConfig::Get(model::ModelKind::kSdxl);
  const sched::LatencyModel fitted =
      sched::LatencyModel::FitOffline(config, model::ComputeMode::kMaskAwareY);
  const sched::LatencyModel rebuilt = sched::LatencyModel::FromFits(
      config, model::ComputeMode::kMaskAwareY, fitted.compute_fit(),
      fitted.load_fit());
  const std::vector<double> batches[] = {
      {0.1}, {0.5, 0.3}, {0.9, 0.05, 0.4}};
  for (const std::vector<double>& ratios : batches) {
    EXPECT_EQ(rebuilt.EstimateStepLatency(ratios).micros(),
              fitted.EstimateStepLatency(ratios).micros());
  }
}

TEST(FedTest, JoinLoadsProfileFromMetricsSplice) {
  auto node = StartFakeNode(kFakeMetrics);
  NodeRegistry registry(FastProbeOptions());
  const int index = registry.Join(FedNode{"127.0.0.1", node->port()});

  const NodeInfo info = registry.Info(index);
  EXPECT_EQ(info.health, NodeHealth::kAlive);
  EXPECT_TRUE(info.routable);
  ASSERT_TRUE(info.profile_loaded);
  EXPECT_EQ(info.workers, 2);
  EXPECT_EQ(info.max_batch, 4);
  EXPECT_EQ(registry.capacity(index), 8);
  EXPECT_DOUBLE_EQ(info.per_request_overhead_s, 0.01);
  ASSERT_NE(registry.model(index), nullptr);
  EXPECT_DOUBLE_EQ(registry.model(index)->compute_fit().slope, 0.0015);
  EXPECT_DOUBLE_EQ(registry.model(index)->compute_fit().intercept, 0.0002);
  node->Stop();
}

TEST(FedTest, HealthWalksAliveSuspectDeadAndBack) {
  auto node = StartFakeNode(kFakeMetrics);
  const uint16_t port = node->port();

  NodeRegistryOptions options = FastProbeOptions();
  options.suspect_after = 2;
  options.dead_after = 4;
  NodeRegistry registry(options);
  std::atomic<int> deaths{0};
  std::atomic<int> revivals{0};
  registry.SetOnDead([&](int) { ++deaths; });
  registry.SetOnAlive([&](int) { ++revivals; });

  const int index = registry.Join(FedNode{"127.0.0.1", port});
  EXPECT_EQ(registry.health(index), NodeHealth::kAlive);
  EXPECT_EQ(revivals.load(), 1);  // Suspect -> alive at join.

  node->Stop();
  node.reset();
  registry.ProbeOnce();
  EXPECT_EQ(registry.health(index), NodeHealth::kAlive);  // 1 miss.
  registry.ProbeOnce();
  EXPECT_EQ(registry.health(index), NodeHealth::kSuspect);  // 2 misses.
  EXPECT_TRUE(registry.Routable(index));  // Suspect still routes.
  registry.ProbeOnce();
  registry.ProbeOnce();
  EXPECT_EQ(registry.health(index), NodeHealth::kDead);  // 4 misses.
  EXPECT_FALSE(registry.Routable(index));
  EXPECT_EQ(deaths.load(), 1);
  registry.ProbeOnce();
  EXPECT_EQ(deaths.load(), 1);  // Dead fires once, not per probe.

  // Revival on the same port: the next answered probe resurrects it.
  node = StartFakeNode(kFakeMetrics, port);
  registry.ProbeOnce();
  EXPECT_EQ(registry.health(index), NodeHealth::kAlive);
  EXPECT_TRUE(registry.Routable(index));
  EXPECT_EQ(revivals.load(), 2);
  node->Stop();
}

TEST(FedTest, LeftNodeIsNeitherProbedNorRoutable) {
  auto node = StartFakeNode(kFakeMetrics);
  NodeRegistry registry(FastProbeOptions());
  const int index = registry.Join(FedNode{"127.0.0.1", node->port()});
  EXPECT_TRUE(registry.Routable(index));
  const uint64_t probes_before = registry.Info(index).probes_ok;

  EXPECT_TRUE(registry.Leave(index));
  EXPECT_FALSE(registry.Leave(index));  // Second leave is a no-op.
  EXPECT_FALSE(registry.Routable(index));
  registry.ProbeOnce();
  EXPECT_EQ(registry.Info(index).probes_ok, probes_before);
  node->Stop();
}

TEST(FedTest, DispatchFailuresTripTheCircuitBreaker) {
  NodeRegistryOptions options = FastProbeOptions();
  options.max_consecutive_dispatch_failures = 3;
  options.circuit_cooldown = std::chrono::milliseconds(60000);
  NodeRegistry registry(options);
  // Nothing listens on port 1: the node joins as suspect (still routable).
  const int index = registry.Join(FedNode{"127.0.0.1", 1});
  EXPECT_EQ(registry.health(index), NodeHealth::kSuspect);
  EXPECT_TRUE(registry.Routable(index));

  registry.NoteDispatchFailure(index);
  registry.NoteDispatchFailure(index);
  EXPECT_TRUE(registry.Routable(index));  // Two strikes: still closed.
  registry.NoteDispatchFailure(index);
  EXPECT_FALSE(registry.Routable(index));  // Third opens the circuit.
  EXPECT_TRUE(registry.Info(index).circuit_open);

  registry.NoteDispatchSuccess(index);  // A success closes it again.
  EXPECT_TRUE(registry.Routable(index));
  EXPECT_EQ(registry.Info(index).dispatch_failures, 3u);
}

TEST(FedTest, MembersJsonReportsPerNodeStateAndSplicesMetrics) {
  auto node = StartFakeNode(kFakeMetrics);
  NodeRegistry registry(FastProbeOptions());
  registry.Join(FedNode{"127.0.0.1", node->port()});
  registry.Join(FedNode{"127.0.0.1", 1});  // Unreachable.

  const std::string json = registry.MembersJson();
  EXPECT_NE(json.find("\"id\":\"127.0.0.1:" + std::to_string(node->port()) +
                      "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"health\":\"alive\""), std::string::npos);
  EXPECT_NE(json.find("\"health\":\"suspect\""), std::string::npos);
  // The live node's own MetricsJson rides along; the silent one is null.
  EXPECT_NE(json.find("\"metrics\":{\"submitted\":5"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":null"), std::string::npos);
  node->Stop();
}

TEST(FedTest, RegistryProbesWithAuthWhenNodesRequireIt) {
  auto node = StartFakeNode(kFakeMetrics, 0, "fleet-secret");
  NodeRegistryOptions options = FastProbeOptions();
  NodeRegistry bare(options);
  EXPECT_EQ(bare.health(bare.Join(FedNode{"127.0.0.1", node->port()})),
            NodeHealth::kSuspect);  // Unauthenticated probe is refused.

  options.auth_token = "fleet-secret";
  NodeRegistry authed(options);
  EXPECT_EQ(authed.health(authed.Join(FedNode{"127.0.0.1", node->port()})),
            NodeHealth::kAlive);
  node->Stop();
}

// --- FedRouter ------------------------------------------------------------

NodeSnapshot MakeSnapshot(int node, int capacity,
                          std::vector<double> ratios = {},
                          std::vector<int> steps = {}) {
  NodeSnapshot snap;
  snap.node = node;
  snap.routable = true;
  snap.capacity = capacity;
  snap.outstanding_ratios = std::move(ratios);
  snap.outstanding_steps = std::move(steps);
  return snap;
}

trace::Request MakeRouteRequest(double mask_ratio) {
  trace::Request request;
  request.id = 1;
  request.mask_ratio = mask_ratio;
  request.denoise_steps = 8;
  return request;
}

FedRouter MakeFedRouter(sched::RoutePolicy policy) {
  return FedRouter(policy, model::TimingConfig::Get(model::ModelKind::kSdxl),
                   model::ComputeMode::kMaskAwareY,
                   /*default_overhead_s=*/0.0);
}

TEST(FedTest, RouterReturnsMinusOneWhenNothingIsRoutable) {
  FedRouter router = MakeFedRouter(sched::RoutePolicy::kMaskAware);
  EXPECT_EQ(router.Route(MakeRouteRequest(0.3), {}), -1);
  std::vector<NodeSnapshot> nodes = {MakeSnapshot(0, 4), MakeSnapshot(1, 4)};
  nodes[0].routable = false;
  nodes[1].routable = false;
  EXPECT_EQ(router.Route(MakeRouteRequest(0.3), nodes), -1);
}

TEST(FedTest, RouterSkipsUnroutableNodesUnderEveryPolicy) {
  const sched::RoutePolicy all[] = {
      sched::RoutePolicy::kRoundRobin, sched::RoutePolicy::kFirstFit,
      sched::RoutePolicy::kRequestCount, sched::RoutePolicy::kTokenCount,
      sched::RoutePolicy::kMaskAware};
  for (sched::RoutePolicy policy : all) {
    FedRouter router = MakeFedRouter(policy);
    std::vector<NodeSnapshot> nodes = {MakeSnapshot(0, 4), MakeSnapshot(1, 4),
                                       MakeSnapshot(2, 4)};
    nodes[0].routable = false;
    nodes[2].routable = false;
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(router.Route(MakeRouteRequest(0.2 + 0.1 * i), nodes), 1)
          << sched::ToString(policy);
    }
  }
}

TEST(FedTest, RoundRobinCyclesOverRoutableNodes) {
  FedRouter router = MakeFedRouter(sched::RoutePolicy::kRoundRobin);
  std::vector<NodeSnapshot> nodes = {MakeSnapshot(0, 4), MakeSnapshot(1, 4),
                                     MakeSnapshot(2, 4)};
  nodes[1].routable = false;
  std::vector<int> picks;
  for (int i = 0; i < 4; ++i) {
    picks.push_back(router.Route(MakeRouteRequest(0.3), nodes));
  }
  EXPECT_EQ(picks, (std::vector<int>{0, 2, 0, 2}));
}

TEST(FedTest, MaskAwareAvoidsTheLoadedNode) {
  FedRouter router = MakeFedRouter(sched::RoutePolicy::kMaskAware);
  // Node 0 is buried under heavy-mask work; node 1 idle.
  std::vector<NodeSnapshot> nodes = {
      MakeSnapshot(0, 4, {0.9, 0.9, 0.8}, {50, 50, 50}), MakeSnapshot(1, 4)};
  EXPECT_EQ(router.Route(MakeRouteRequest(0.5), nodes), 1);
  EXPECT_GT(router.CalcCost(MakeRouteRequest(0.5), nodes[0]),
            router.CalcCost(MakeRouteRequest(0.5), nodes[1]));
}

TEST(FedTest, MaskAwareSpreadsNearTiesByAssignmentCount) {
  FedRouter router = MakeFedRouter(sched::RoutePolicy::kMaskAware);
  // Identical idle nodes: every placement is a near-tie, so assignments
  // must spread instead of piling onto node 0.
  std::vector<NodeSnapshot> nodes = {MakeSnapshot(0, 4), MakeSnapshot(1, 4),
                                     MakeSnapshot(2, 4)};
  std::vector<int> count(3, 0);
  for (int i = 0; i < 9; ++i) {
    ++count[static_cast<size_t>(router.Route(MakeRouteRequest(0.3), nodes))];
  }
  EXPECT_EQ(count, (std::vector<int>{3, 3, 3}));
}

TEST(FedTest, ToWorkerStatusSplitsRunningAndWaiting) {
  NodeSnapshot snap = MakeSnapshot(7, 2, {0.1, 0.2, 0.3, 0.4}, {8, 8, 4, 4});
  const sched::WorkerStatus status = FedRouter::ToWorkerStatus(snap);
  EXPECT_EQ(status.worker_id, 7);
  EXPECT_EQ(status.max_batch, 2);
  EXPECT_EQ(status.running_ratios, (std::vector<double>{0.1, 0.2}));
  EXPECT_EQ(status.waiting_ratios, (std::vector<double>{0.3, 0.4}));
  EXPECT_EQ(status.running_remaining_steps, (std::vector<int>{8, 8}));
  EXPECT_EQ(status.remaining_steps, 24);
  EXPECT_FALSE(status.has_slack);
  EXPECT_TRUE(FedRouter::ToWorkerStatus(MakeSnapshot(7, 2, {0.1}, {8}))
                  .has_slack);
}

}  // namespace
}  // namespace flashps::fed
