// Quality gate for the lossy cache-precision modes (--cache-precision).
//
// A worker that fetches a template's activation record from an fp16 or
// staged cache tier denoises against codec-degraded activations. This
// suite round-trips records through the codec exactly as the wire does
// and asserts the two properties the serving tier sells:
//
//   1. lossless mode is bitwise — cached-edit outputs are unchanged;
//   2. the lossy modes stay inside the Table 2 quality envelope: SSIM
//      against the Diffusers-style full-compute reference stays in the
//      visually-indistinguishable band, and FlashPS-on-a-lossy-cache
//      still orders ahead of the TeaCache baseline on SSIM, FID, and
//      CLIP — compression never flips the paper's comparison.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "src/model/diffusion_model.h"
#include "src/quality/metrics.h"
#include "src/tensor/quant.h"
#include "src/trace/workload.h"

namespace flashps {
namespace {

// Same visually-indistinguishable band as bench_table2_quality.
constexpr double kAcceptSsim = 0.90;

bool MatrixBitwise(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.bytes()) == 0;
}

// Round-trips every matrix of `record` through the codec at `mode` — the
// exact degradation a worker sees after a fetch from a lossy cache tier.
model::ActivationRecord CodecRoundTrip(const model::ActivationRecord& record,
                                       quant::PrecisionMode mode) {
  const int num_steps = static_cast<int>(record.steps.size());
  model::ActivationRecord out;
  out.steps.resize(record.steps.size());
  auto roundtrip = [&](const Matrix& m, int step) {
    Matrix back;
    const quant::EncodedMatrix encoded =
        quant::Encode(m, quant::DtypeForStep(mode, step, num_steps));
    EXPECT_TRUE(quant::Decode(encoded, &back, nullptr));
    return back;
  };
  for (size_t s = 0; s < record.steps.size(); ++s) {
    const int step = static_cast<int>(s);
    for (const Matrix& y : record.steps[s].y) {
      out.steps[s].y.push_back(roundtrip(y, step));
    }
    for (const Matrix& k : record.steps[s].k) {
      out.steps[s].k.push_back(roundtrip(k, step));
    }
    for (const Matrix& v : record.steps[s].v) {
      out.steps[s].v.push_back(roundtrip(v, step));
    }
  }
  return out;
}

class CodecQualityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = model::NumericsConfig::ForTests();
    model_ = std::make_unique<model::DiffusionModel>(config_);
    Rng rng(77);
    for (int i = 0; i < kEdits; ++i) {
      masks_.push_back(trace::GenerateBlobMask(
          config_.grid_h, config_.grid_w, 0.25 + 0.1 * (i % 3), rng));
    }
  }

  // One edit per mask against one shared template record.
  std::vector<Matrix> EditAll(const model::ActivationRecord* cache,
                              model::ComputeMode mode,
                              double teacache_threshold = 0.5) {
    std::vector<Matrix> images;
    for (int i = 0; i < kEdits; ++i) {
      model::DiffusionModel::RunOptions options;
      options.mode = mode;
      options.cache = cache;
      options.mask = &masks_[static_cast<size_t>(i)];
      options.teacache_threshold = teacache_threshold;
      images.push_back(model_->EditImage(kTemplate, masks_[static_cast<size_t>(i)],
                                         PromptSeed(i), options));
    }
    return images;
  }

  double MeanSsim(const std::vector<Matrix>& images,
                  const std::vector<Matrix>& reference) {
    double acc = 0.0;
    for (int i = 0; i < kEdits; ++i) {
      acc += quality::Ssim(images[static_cast<size_t>(i)],
                           reference[static_cast<size_t>(i)]);
    }
    return acc / kEdits;
  }

  double MeanClip(const std::vector<Matrix>& images) {
    double acc = 0.0;
    for (int i = 0; i < kEdits; ++i) {
      acc += quality::ClipProxyScore(
          images[static_cast<size_t>(i)], model_->PromptTexture(PromptSeed(i)),
          masks_[static_cast<size_t>(i)], config_.patch);
    }
    return acc / kEdits;
  }

  static uint64_t PromptSeed(int i) { return 10'000 + static_cast<uint64_t>(i); }

  static constexpr int kEdits = 6;
  static constexpr int kTemplate = 3;

  model::NumericsConfig config_;
  std::unique_ptr<model::DiffusionModel> model_;
  std::vector<trace::Mask> masks_;
};

TEST_F(CodecQualityTest, LosslessRoundTripIsBitwise) {
  const model::ActivationRecord record =
      model_->Register(kTemplate, /*record_kv=*/true);
  const model::ActivationRecord back =
      CodecRoundTrip(record, quant::PrecisionMode::kLossless);
  ASSERT_EQ(back.steps.size(), record.steps.size());
  for (size_t s = 0; s < record.steps.size(); ++s) {
    for (size_t b = 0; b < record.steps[s].y.size(); ++b) {
      EXPECT_TRUE(MatrixBitwise(back.steps[s].y[b], record.steps[s].y[b]));
      EXPECT_TRUE(MatrixBitwise(back.steps[s].k[b], record.steps[s].k[b]));
      EXPECT_TRUE(MatrixBitwise(back.steps[s].v[b], record.steps[s].v[b]));
    }
  }
  // And therefore so are the edits computed against it.
  const std::vector<Matrix> exact =
      EditAll(&record, model::ComputeMode::kMaskAwareY);
  const std::vector<Matrix> routed =
      EditAll(&back, model::ComputeMode::kMaskAwareY);
  for (int i = 0; i < kEdits; ++i) {
    EXPECT_TRUE(MatrixBitwise(exact[static_cast<size_t>(i)],
                              routed[static_cast<size_t>(i)]));
  }
}

TEST_F(CodecQualityTest, LossyModesStayInTheTable2Envelope) {
  const model::ActivationRecord record =
      model_->Register(kTemplate, /*record_kv=*/false);
  // Diffusers-style reference: exact full computation, no cache.
  const std::vector<Matrix> reference =
      EditAll(nullptr, model::ComputeMode::kFull);
  // Table 2's baselines at the serving-side configuration. The codec gate
  // is ordering *preservation*: whatever comparison the lossless FlashPS
  // run wins or loses against each baseline, the compressed runs must
  // reproduce — compression may not flip a Table 2 conclusion.
  const std::vector<Matrix> teacache =
      EditAll(nullptr, model::ComputeMode::kTeaCache);
  const double teacache_ssim = MeanSsim(teacache, reference);
  const double teacache_fid = quality::FidScore(teacache, reference);
  const std::vector<Matrix> sparse =
      EditAll(nullptr, model::ComputeMode::kSparse);
  const double sparse_ssim = MeanSsim(sparse, reference);
  const double sparse_fid = quality::FidScore(sparse, reference);

  const std::vector<Matrix> lossless =
      EditAll(&record, model::ComputeMode::kMaskAwareY);
  const double lossless_ssim = MeanSsim(lossless, reference);
  const double lossless_fid = quality::FidScore(lossless, reference);
  const double lossless_clip = MeanClip(lossless);

  for (const quant::PrecisionMode mode :
       {quant::PrecisionMode::kF16, quant::PrecisionMode::kStaged}) {
    const model::ActivationRecord degraded = CodecRoundTrip(record, mode);
    const std::vector<Matrix> images =
        EditAll(&degraded, model::ComputeMode::kMaskAwareY);
    const double ssim = MeanSsim(images, reference);
    const double fid = quality::FidScore(images, reference);
    const double clip = MeanClip(images);
    std::printf("[codec-quality] %s: ssim=%.6f fid=%.6f clip=%.6f "
                "(lossless ssim=%.6f fid=%.6f clip=%.6f; teacache "
                "ssim=%.6f fid=%.6f; sparse ssim=%.6f fid=%.6f)\n",
                quant::ToString(mode).c_str(), ssim, fid, clip,
                lossless_ssim, lossless_fid, lossless_clip, teacache_ssim,
                teacache_fid, sparse_ssim, sparse_fid);

    // Inside the acceptance band, and within a hair of the lossless run
    // on every metric.
    EXPECT_GE(ssim, kAcceptSsim) << quant::ToString(mode);
    EXPECT_GE(ssim, lossless_ssim - 0.02) << quant::ToString(mode);
    EXPECT_LE(fid, lossless_fid * 1.05) << quant::ToString(mode);
    EXPECT_GE(clip, lossless_clip - 0.02) << quant::ToString(mode);
    // Ordering preservation against both baselines.
    EXPECT_EQ(ssim > teacache_ssim, lossless_ssim > teacache_ssim)
        << quant::ToString(mode);
    EXPECT_EQ(fid < teacache_fid, lossless_fid < teacache_fid)
        << quant::ToString(mode);
    EXPECT_EQ(ssim > sparse_ssim, lossless_ssim > sparse_ssim)
        << quant::ToString(mode);
    EXPECT_EQ(fid < sparse_fid, lossless_fid < sparse_fid)
        << quant::ToString(mode);
  }
}

}  // namespace
}  // namespace flashps
