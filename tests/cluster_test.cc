#include <gtest/gtest.h>

#include <set>

#include "src/cluster/simulation.h"

namespace flashps::cluster {
namespace {

using model::ModelKind;
using serving::SystemKind;

ClusterConfig SmallCluster(SystemKind system, int workers = 2) {
  ClusterConfig c;
  c.num_workers = workers;
  c.engine = serving::EngineConfig::ForSystem(system, ModelKind::kSdxl);
  c.engine.model_config.denoise_steps = 10;
  c.policy = system == SystemKind::kFlashPS ? sched::RoutePolicy::kMaskAware
                                            : sched::RoutePolicy::kRequestCount;
  return c;
}

std::vector<trace::Request> SmallWorkload(int n, double rps,
                                          uint64_t seed = 42) {
  trace::WorkloadSpec spec;
  spec.num_requests = n;
  spec.rps = rps;
  spec.seed = seed;
  spec.denoise_steps = 10;
  return trace::GenerateWorkload(spec);
}

TEST(ClusterSimTest, AllRequestsComplete) {
  const auto requests = SmallWorkload(40, 2.0);
  const auto result = RunClusterSim(SmallCluster(SystemKind::kFlashPS), requests);
  ASSERT_EQ(result.completed.size(), requests.size());
  std::set<uint64_t> ids;
  for (const auto& done : result.completed) {
    EXPECT_TRUE(ids.insert(done.request.id).second);
    EXPECT_GE(done.arrival.micros(), 0);
    EXPECT_GE(done.completion, done.arrival);
  }
  EXPECT_GT(result.throughput_rps, 0.0);
  EXPECT_GT(result.makespan_s, 0.0);
  EXPECT_EQ(result.total_latency_s.count(), requests.size());
}

TEST(ClusterSimTest, DeterministicAcrossRuns) {
  const auto requests = SmallWorkload(30, 1.5);
  const auto config = SmallCluster(SystemKind::kFlashPS);
  const auto a = RunClusterSim(config, requests);
  const auto b = RunClusterSim(config, requests);
  ASSERT_EQ(a.completed.size(), b.completed.size());
  for (size_t i = 0; i < a.completed.size(); ++i) {
    EXPECT_EQ(a.completed[i].completion.micros(),
              b.completed[i].completion.micros());
  }
}

TEST(ClusterSimTest, FlashPSBeatsDiffusersOnLatency) {
  // Fig. 12's headline: FlashPS reduces average latency substantially at the
  // same traffic.
  const auto requests = SmallWorkload(60, 1.5);
  const auto flash =
      RunClusterSim(SmallCluster(SystemKind::kFlashPS), requests);
  const auto diffusers =
      RunClusterSim(SmallCluster(SystemKind::kDiffusers), requests);
  EXPECT_LT(flash.total_latency_s.Mean(), diffusers.total_latency_s.Mean());
  EXPECT_LT(flash.queueing_s.Mean(), diffusers.queueing_s.Mean());
}

TEST(ClusterSimTest, MoreWorkersReduceLatencyUnderLoad) {
  const auto requests = SmallWorkload(60, 3.0);
  const auto two =
      RunClusterSim(SmallCluster(SystemKind::kFlashPS, 2), requests);
  const auto four =
      RunClusterSim(SmallCluster(SystemKind::kFlashPS, 4), requests);
  EXPECT_LE(four.total_latency_s.Mean(), two.total_latency_s.Mean() * 1.02);
}

TEST(ClusterSimTest, SchedulerOverheadDelaysDispatch) {
  auto config = SmallCluster(SystemKind::kFlashPS, 1);
  config.scheduler_overhead = Duration::Millis(100);  // Exaggerated.
  const auto requests = SmallWorkload(5, 0.2);
  const auto result = RunClusterSim(config, requests);
  for (const auto& done : result.completed) {
    // Arrival timestamps come from the trace; exec can't start before the
    // routing decision lands.
    EXPECT_GE((done.exec_start - done.request.arrival).millis(), 100.0);
  }
}

TEST(ClusterSimTest, CacheEngineIntegration) {
  auto config = SmallCluster(SystemKind::kFlashPS, 2);
  config.use_cache_engine = true;
  config.num_templates = 16;
  const auto requests = SmallWorkload(20, 1.0);
  const auto result = RunClusterSim(config, requests);
  EXPECT_EQ(result.completed.size(), requests.size());
}

TEST(ClusterSimTest, ColdTemplatesAddQueueingNotFailures) {
  auto config = SmallCluster(SystemKind::kFlashPS, 1);
  config.use_cache_engine = true;
  config.num_templates = 970;
  // Host tier fits only ~2 templates: most requests hit disk promotions.
  config.host_capacity_bytes =
      2 * config.engine.model_config.TemplateCacheStoreBytes();
  const auto requests = SmallWorkload(10, 0.2);
  const auto cold = RunClusterSim(config, requests);
  ASSERT_EQ(cold.completed.size(), requests.size());

  config.host_capacity_bytes = 1ULL << 62;  // Everything host-resident.
  const auto warm = RunClusterSim(config, requests);
  EXPECT_GE(cold.queueing_s.Mean(), warm.queueing_s.Mean());
}

TEST(MeasureEngineThroughputTest, FlashPSThroughputGrowsWithBatch) {
  // Fig. 14: mask-aware engines keep gaining from batching; full-compute
  // engines plateau almost immediately.
  const auto flash = serving::EngineConfig::ForSystem(SystemKind::kFlashPS,
                                                      ModelKind::kSdxl);
  const double b1 =
      MeasureEngineThroughput(flash, 1, trace::TraceKind::kPublic, 16);
  const double b4 =
      MeasureEngineThroughput(flash, 4, trace::TraceKind::kPublic, 32);
  EXPECT_GT(b4, b1 * 1.2);

  const auto diffusers = serving::EngineConfig::ForSystem(
      SystemKind::kDiffusers, ModelKind::kSdxl);
  const double d1 =
      MeasureEngineThroughput(diffusers, 1, trace::TraceKind::kPublic, 8);
  const double d4 =
      MeasureEngineThroughput(diffusers, 4, trace::TraceKind::kPublic, 16);
  EXPECT_LT(d4 / d1, b4 / b1);
}

}  // namespace
}  // namespace flashps::cluster
