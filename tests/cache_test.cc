#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <set>

#include "src/cache/activation_store.h"
#include "src/cache/cache_engine.h"

namespace flashps::cache {
namespace {

constexpr uint64_t kMiB = 1ULL << 20;

device::DeviceSpec TestSpec() {
  device::DeviceSpec spec;
  spec.disk_bw = 100e6;  // 100 MB/s: 1 MiB loads in ~10.5 ms.
  return spec;
}

TEST(CacheEngineTest, RegistrationMakesHostResidentWhenItFits) {
  CacheEngine engine(10 * kMiB, TestSpec());
  engine.RegisterTemplate(1, 4 * kMiB, TimePoint());
  EXPECT_TRUE(engine.IsRegistered(1));
  EXPECT_EQ(engine.Locate(1), Tier::kHost);
  EXPECT_EQ(engine.host_bytes_used(), 4 * kMiB);
  EXPECT_EQ(engine.Locate(99), Tier::kUnknown);
}

TEST(CacheEngineTest, HostHitIsImmediate) {
  CacheEngine engine(10 * kMiB, TestSpec());
  engine.RegisterTemplate(1, 4 * kMiB, TimePoint());
  const TimePoint now = TimePoint::FromSeconds(5.0);
  EXPECT_EQ(engine.EnsureHostResident(1, now), now);
  EXPECT_EQ(engine.stats().host_hits, 1u);
}

TEST(CacheEngineTest, LruEvictionOnPressure) {
  CacheEngine engine(10 * kMiB, TestSpec());
  engine.RegisterTemplate(1, 4 * kMiB, TimePoint());
  engine.RegisterTemplate(2, 4 * kMiB, TimePoint());
  // Touch 1 so 2 becomes LRU.
  engine.Touch(1, TimePoint::FromSeconds(1.0));
  engine.RegisterTemplate(3, 4 * kMiB, TimePoint::FromSeconds(2.0));
  EXPECT_EQ(engine.Locate(3), Tier::kHost);
  EXPECT_EQ(engine.Locate(2), Tier::kDisk);  // Evicted.
  EXPECT_EQ(engine.Locate(1), Tier::kHost);  // Protected by the touch.
  EXPECT_EQ(engine.stats().evictions, 1u);
  EXPECT_LE(engine.host_bytes_used(), engine.host_capacity());
}

TEST(CacheEngineTest, DiskPromotionTakesBandwidthTime) {
  CacheEngine engine(4 * kMiB, TestSpec());
  engine.RegisterTemplate(1, 4 * kMiB, TimePoint());
  engine.RegisterTemplate(2, 4 * kMiB, TimePoint());  // Evicts 1.
  EXPECT_EQ(engine.Locate(1), Tier::kDisk);

  const TimePoint now = TimePoint::FromSeconds(10.0);
  const TimePoint ready = engine.EnsureHostResident(1, now);
  // 4 MiB at 100 MB/s ~= 42 ms.
  EXPECT_NEAR((ready - now).seconds(), 0.0419, 0.001);
  EXPECT_EQ(engine.stats().disk_promotions, 1u);

  // Idempotent while in flight.
  EXPECT_EQ(engine.EnsureHostResident(1, now + Duration::Millis(1)), ready);
  // After completion it's a host hit.
  EXPECT_EQ(engine.EnsureHostResident(1, ready + Duration::Millis(1)),
            ready + Duration::Millis(1));
}

TEST(CacheEngineTest, ConcurrentPromotionsSerializeOnDisk) {
  CacheEngine engine(8 * kMiB, TestSpec());
  engine.RegisterTemplate(1, 4 * kMiB, TimePoint());
  engine.RegisterTemplate(2, 4 * kMiB, TimePoint());
  engine.RegisterTemplate(3, 4 * kMiB, TimePoint());  // 1 evicted.
  engine.RegisterTemplate(4, 4 * kMiB, TimePoint());  // 2 evicted.
  ASSERT_EQ(engine.Locate(1), Tier::kDisk);
  ASSERT_EQ(engine.Locate(2), Tier::kDisk);

  const TimePoint now = TimePoint::FromSeconds(1.0);
  const TimePoint r1 = engine.EnsureHostResident(1, now);
  const TimePoint r2 = engine.EnsureHostResident(2, now);
  // The second promotion queues behind the first on the disk timeline.
  EXPECT_GE((r2 - r1).seconds(), (r1 - now).seconds() * 0.99);
}

TEST(CacheEngineTest, RegisterBiggerThanHostStaysOnDisk) {
  CacheEngine engine(2 * kMiB, TestSpec());
  engine.RegisterTemplate(1, 4 * kMiB, TimePoint());
  EXPECT_TRUE(engine.IsRegistered(1));
  EXPECT_EQ(engine.Locate(1), Tier::kDisk);
}

TEST(CacheEngineTest, ModelBasedLruAgainstReference) {
  // Randomized operation sequence checked against a simple reference model
  // of an LRU set with capacity in "slots" (all entries equal-sized).
  constexpr uint64_t kEntry = 1 * kMiB;
  constexpr int kSlots = 4;
  CacheEngine engine(kSlots * kEntry, TestSpec());
  std::list<int> reference_lru;  // Front = most recent, host-resident set.
  auto ref_contains = [&](int id) {
    return std::find(reference_lru.begin(), reference_lru.end(), id) !=
           reference_lru.end();
  };
  auto ref_touch = [&](int id) {
    reference_lru.remove(id);
    reference_lru.push_front(id);
    while (static_cast<int>(reference_lru.size()) > kSlots) {
      reference_lru.pop_back();
    }
  };

  Rng rng(77);
  std::set<int> registered;
  TimePoint now;
  for (int op = 0; op < 400; ++op) {
    now = now + Duration::Millis(100);
    const int id = static_cast<int>(rng.NextBelow(10));
    switch (rng.NextBelow(3)) {
      case 0:  // Register.
        engine.RegisterTemplate(id, kEntry, now);
        if (registered.insert(id).second) {
          ref_touch(id);  // New registrations become resident (MRU).
        }
        break;
      case 1:  // Promote/ensure.
        if (registered.count(id)) {
          engine.EnsureHostResident(id, now);
          ref_touch(id);
        }
        break;
      case 2:  // Touch.
        if (registered.count(id) && ref_contains(id)) {
          engine.Touch(id, now);
          ref_touch(id);
        }
        break;
    }
    // Invariants: capacity respected; residency matches the reference.
    ASSERT_LE(engine.host_bytes_used(), engine.host_capacity());
    for (const int t : registered) {
      const Tier tier = engine.Locate(t);
      if (ref_contains(t)) {
        EXPECT_EQ(tier, Tier::kHost) << "op " << op << " template " << t;
      } else {
        EXPECT_EQ(tier, Tier::kDisk) << "op " << op << " template " << t;
      }
    }
  }
}

TEST(ActivationStoreTest, RegistersOnceAndReuses) {
  model::DiffusionModel m(model::NumericsConfig::ForTests());
  ActivationStore store;
  EXPECT_FALSE(store.Contains(5));
  const auto& a = store.GetOrRegister(m, 5);
  EXPECT_TRUE(store.Contains(5));
  const auto& b = store.GetOrRegister(m, 5);
  EXPECT_EQ(&a, &b);  // Same record, no recomputation.
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.TotalBytes(), a.TotalBytes());
}

TEST(ActivationStoreTest, UpgradesToKvWhenRequested) {
  model::DiffusionModel m(model::NumericsConfig::ForTests());
  ActivationStore store;
  const auto& plain = store.GetOrRegister(m, 1, /*record_kv=*/false);
  EXPECT_FALSE(plain.has_kv());
  const auto& kv = store.GetOrRegister(m, 1, /*record_kv=*/true);
  EXPECT_TRUE(kv.has_kv());
}

}  // namespace
}  // namespace flashps::cache
