#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/fast_tanh.h"
#include "src/tensor/matrix.h"

namespace flashps {
namespace {

Matrix MakeSequential(int rows, int cols) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.at(r, c) = static_cast<float>(r * cols + c + 1);
    }
  }
  return m;
}

// Naive triple-loop reference for verifying the streaming implementation.
Matrix MatMulReference(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (int p = 0; p < a.cols(); ++p) {
        acc += a.at(i, p) * b.at(p, j);
      }
      out.at(i, j) = acc;
    }
  }
  return out;
}

TEST(MatrixTest, BasicAccessors) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_EQ(m.bytes(), 48u);
  m.at(2, 3) = 5.0f;
  EXPECT_EQ(m.at(2, 3), 5.0f);
  EXPECT_EQ(m.row(2)[3], 5.0f);
}

TEST(MatrixTest, MatMulSmallKnown) {
  Matrix a = MakeSequential(2, 3);  // [1 2 3; 4 5 6]
  Matrix b = MakeSequential(3, 2);  // [1 2; 3 4; 5 6]
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 22.0f);
  EXPECT_EQ(c.at(0, 1), 28.0f);
  EXPECT_EQ(c.at(1, 0), 49.0f);
  EXPECT_EQ(c.at(1, 1), 64.0f);
}

TEST(MatrixTest, MatMulMatchesReferenceOnRandom) {
  Rng rng(5);
  Matrix a(17, 23);
  Matrix b(23, 11);
  a.FillNormal(rng, 1.0f);
  b.FillNormal(rng, 1.0f);
  const Matrix got = MatMul(a, b);
  const Matrix want = MatMulReference(a, b);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 1e-4f);
  }
}

TEST(MatrixTest, MatMulTransposedMatchesMatMul) {
  Rng rng(6);
  Matrix a(9, 14);
  Matrix b(12, 14);
  a.FillNormal(rng, 1.0f);
  b.FillNormal(rng, 1.0f);
  // b^T explicitly.
  Matrix bt(14, 12);
  for (int r = 0; r < b.rows(); ++r) {
    for (int c = 0; c < b.cols(); ++c) {
      bt.at(c, r) = b.at(r, c);
    }
  }
  const Matrix got = MatMulTransposed(a, b);
  const Matrix want = MatMul(a, bt);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 1e-4f);
  }
}

TEST(MatrixTest, SoftmaxRowsSumToOne) {
  Rng rng(7);
  Matrix m(8, 16);
  m.FillNormal(rng, 3.0f);
  SoftmaxRows(m);
  for (int r = 0; r < m.rows(); ++r) {
    float sum = 0.0f;
    for (int c = 0; c < m.cols(); ++c) {
      EXPECT_GE(m.at(r, c), 0.0f);
      sum += m.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(MatrixTest, SoftmaxIsShiftInvariantAndStable) {
  Matrix a(1, 3);
  a.at(0, 0) = 1000.0f;
  a.at(0, 1) = 1001.0f;
  a.at(0, 2) = 1002.0f;
  SoftmaxRows(a);
  Matrix b(1, 3);
  b.at(0, 0) = 0.0f;
  b.at(0, 1) = 1.0f;
  b.at(0, 2) = 2.0f;
  SoftmaxRows(b);
  for (int c = 0; c < 3; ++c) {
    EXPECT_TRUE(std::isfinite(a.at(0, c)));
    EXPECT_NEAR(a.at(0, c), b.at(0, c), 1e-6f);
  }
}

TEST(MatrixTest, LayerNormRowStats) {
  Rng rng(8);
  Matrix m(5, 64);
  m.FillNormal(rng, 4.0f);
  std::vector<float> gamma(64, 1.0f);
  std::vector<float> beta(64, 0.0f);
  const Matrix out = LayerNorm(m, gamma, beta);
  for (int r = 0; r < out.rows(); ++r) {
    double mean = 0.0;
    double var = 0.0;
    for (int c = 0; c < out.cols(); ++c) {
      mean += out.at(r, c);
    }
    mean /= out.cols();
    for (int c = 0; c < out.cols(); ++c) {
      var += (out.at(r, c) - mean) * (out.at(r, c) - mean);
    }
    var /= out.cols();
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(MatrixTest, LayerNormAppliesGainAndBias) {
  Matrix m(1, 4);
  m.at(0, 0) = 1.0f;
  m.at(0, 1) = 2.0f;
  m.at(0, 2) = 3.0f;
  m.at(0, 3) = 4.0f;
  std::vector<float> gamma(4, 2.0f);
  std::vector<float> beta(4, 5.0f);
  const Matrix out = LayerNorm(m, gamma, beta);
  double mean = 0.0;
  for (int c = 0; c < 4; ++c) {
    mean += out.at(0, c);
  }
  EXPECT_NEAR(mean / 4.0, 5.0, 1e-4);  // Bias shifts the mean.
}

TEST(MatrixTest, GeluKnownValues) {
  Matrix m(1, 3);
  m.at(0, 0) = 0.0f;
  m.at(0, 1) = 10.0f;
  m.at(0, 2) = -10.0f;
  GeluInPlace(m);
  EXPECT_NEAR(m.at(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(m.at(0, 1), 10.0f, 1e-3f);
  EXPECT_NEAR(m.at(0, 2), 0.0f, 1e-3f);
}

// The GELU kernels use the rational FastTanh fit instead of libm's tanh;
// this pins its error bound over the clamp range and saturation outside.
// The worst case (~4 ULPs of 1.0) is near the saturation knee |x| ~ 9.
TEST(MatrixTest, FastTanhMatchesLibmWithinTolerance) {
  for (float x = -12.0f; x <= 12.0f; x += 1e-3f) {
    EXPECT_NEAR(FastTanh(x), std::tanh(x), 5e-7f) << "x=" << x;
  }
  EXPECT_EQ(FastTanh(100.0f), FastTanh(9.0f));
  EXPECT_EQ(FastTanh(-100.0f), FastTanh(-9.0f));
}

TEST(MatrixTest, GatherScatterRoundTrip) {
  Matrix m = MakeSequential(6, 3);
  const std::vector<int> idx = {1, 3, 5};
  Matrix g = GatherRows(m, idx);
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.at(0, 0), m.at(1, 0));
  EXPECT_EQ(g.at(2, 2), m.at(5, 2));

  Matrix dst(6, 3);
  ScatterRows(dst, g, idx);
  for (const int r : idx) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(dst.at(r, c), m.at(r, c));
    }
  }
  EXPECT_EQ(dst.at(0, 0), 0.0f);  // Untouched rows stay zero.
}

TEST(MatrixTest, CosineSimilarityProperties) {
  Matrix m(3, 4);
  for (int c = 0; c < 4; ++c) {
    m.at(0, c) = static_cast<float>(c + 1);
    m.at(1, c) = 2.0f * static_cast<float>(c + 1);  // Parallel to row 0.
    m.at(2, c) = 0.0f;
  }
  m.at(2, 0) = 1.0f;
  EXPECT_NEAR(CosineSimilarity(m, 0, m, 1), 1.0, 1e-6);
  EXPECT_NEAR(CosineSimilarity(m, 0, m, 0), 1.0, 1e-6);
  EXPECT_LT(CosineSimilarity(m, 0, m, 2), 0.5);
}

TEST(MatrixTest, MeanAbsDiffAndNorm) {
  Matrix a(2, 2);
  Matrix b(2, 2);
  a.FillConstant(1.0f);
  b.FillConstant(3.0f);
  EXPECT_DOUBLE_EQ(MeanAbsDiff(a, b), 2.0);
  EXPECT_DOUBLE_EQ(FrobeniusNorm(a), 2.0);
}

TEST(MatrixTest, AddOps) {
  Matrix a(2, 2);
  Matrix b(2, 2);
  a.FillConstant(1.0f);
  b.FillConstant(2.0f);
  const Matrix c = Add(a, b);
  EXPECT_EQ(c.at(1, 1), 3.0f);
  AddInPlace(a, b);
  EXPECT_EQ(a.at(0, 0), 3.0f);
  ScaleInPlace(a, 0.5f);
  EXPECT_EQ(a.at(0, 0), 1.5f);
}

}  // namespace
}  // namespace flashps
